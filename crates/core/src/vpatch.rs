//! V-PATCH: the vectorized filtering engine (Algorithm 2 of the paper),
//! generic over the SIMD backend.
//!
//! The filtering pipeline is **register-resident**: every value flowing
//! between the backend ops in `VPatch::process_block` has the backend's
//! native register type (`VectorBackend::Vec`), so the composed
//! `windows2 → gather_u16 → shift/mask → test` chain compiles to one
//! straight-line kernel with no array materialisation between ops. Candidate
//! positions leave the registers through the vectorized
//! [`VectorBackend::compress_store`] primitive (`vpcompressd` on AVX-512, a
//! `vpermd` LUT on AVX2) instead of a scalar bit-drain of the lane mask —
//! the paper's Figure 6 shows those stores are the main cost on top of pure
//! filtering, so they get the same vector treatment as the filters.

use crate::scratch::{self, Scratch};
use crate::tables::SPatchTables;
use mpm_graph::{with_cached_scratchpad, GraphConfig, ScanGraph};
use mpm_patterns::{fold_byte, MatchEvent, Matcher, MatcherStats, PatternSet};
use mpm_simd::VectorBackend;
use mpm_verify::HASH_MULTIPLIER;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

/// Which variant of the filtering-only measurement to run
/// (Figure 6 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FilterOnlyMode {
    /// Filtering including the cost of storing candidate positions into the
    /// temporary arrays ("V-PATCH-filtering+stores" in Figure 6).
    WithStores,
    /// Pure filtering: lane masks are computed and folded into a checksum but
    /// candidate positions are not stored ("V-PATCH-filtering").
    NoStores,
}

/// V-PATCH engine, generic over the SIMD backend `B` and lane count `W`.
///
/// Use the aliases [`crate::VPatchAvx2`] / [`crate::VPatchAvx512`] /
/// [`crate::VPatchScalar8`] or the [`crate::build_auto`] factory.
#[derive(Clone, Debug)]
pub struct VPatch<B: VectorBackend<W>, const W: usize> {
    tables: Arc<SPatchTables>,
    /// The scan-graph assembly (`vpatch:filter` → `patch:verify`) every
    /// `find_into` / `scan_with_stats` call executes; see
    /// `graph_ops`.
    graph: ScanGraph,
    _backend: PhantomData<B>,
}

impl<B: VectorBackend<W>, const W: usize> VPatch<B, W> {
    /// Compiles V-PATCH for `set`.
    ///
    /// # Panics
    /// Panics if the SIMD backend is not available on this CPU; check
    /// [`VectorBackend::is_available`] or use [`crate::build_auto`].
    pub fn build(set: &PatternSet) -> Self {
        Self::from_tables(SPatchTables::build(set))
    }

    /// Builds from already-compiled tables.
    ///
    /// # Panics
    /// Panics if the SIMD backend is not available on this CPU.
    pub fn from_tables(tables: SPatchTables) -> Self {
        assert!(
            B::is_available(),
            "SIMD backend {} is not available on this CPU",
            B::name()
        );
        let tables = Arc::new(tables);
        let graph = crate::graph_ops::build_vpatch_graph::<B, W>(&tables);
        VPatch {
            tables,
            graph,
            _backend: PhantomData,
        }
    }

    /// The compiled tables.
    pub fn tables(&self) -> &SPatchTables {
        &self.tables
    }

    /// The scan-graph assembly this engine executes.
    pub fn graph(&self) -> &ScanGraph {
        &self.graph
    }

    /// The graph execution parameters (chunk size, overlap).
    pub fn graph_config(&self) -> GraphConfig {
        self.graph.config()
    }

    /// Overrides the graph execution parameters; the A/B harnesses use this
    /// to pin `overlap` on or off regardless of `MPM_GRAPH_OVERLAP`.
    pub fn set_graph_config(&mut self, config: GraphConfig) {
        self.graph.set_config(config);
    }

    /// Name of the SIMD backend in use.
    pub fn backend_name(&self) -> &'static str {
        B::name()
    }

    /// Number of lanes processed per vector iteration.
    pub const fn lanes(&self) -> usize {
        W
    }

    /// Processes one vector block of `W` positions starting at `base`.
    ///
    /// Returns `(mask_short, mask_long)`: the lane masks that passed
    /// filter 1 and filters 2+3 respectively. When `STORE` is true the
    /// corresponding positions are appended to the scratch arrays through
    /// the backend's `compress_store`. When `FOLD` is true (folded tables:
    /// the set contains a `nocase` pattern) the window registers are
    /// ASCII-case-folded with [`VectorBackend::to_ascii_lower`] before the
    /// gathers and hashes, matching the folded bytes the tables were built
    /// over; `FOLD = false` compiles to the historical byte-exact kernel.
    ///
    /// Always inlined into the dispatch-wrapped loops so the backend's
    /// intrinsics fuse into one straight-line kernel and every intermediate
    /// `B::Vec` stays in a vector register.
    #[inline(always)]
    fn process_block<const STORE: bool, const FOLD: bool>(
        t: &SPatchTables,
        haystack: &[u8],
        base: usize,
        scratch: &mut Scratch,
    ) -> (u32, u32) {
        // Input transformation (Figure 2): W overlapping 2-byte windows.
        let windows = B::windows2(haystack, base);
        let windows = if FOLD {
            B::to_ascii_lower(windows)
        } else {
            windows
        };
        // Filter merging (Figure 3): one gather serves both filters. The
        // merged layout stores filter-1/filter-2 bytes at 2*((window & mask)
        // >> 3), computed branch-free as (window >> 2) & gather_index_mask —
        // the mask subsumes both the group-adaptive window truncation and
        // the historical !1 byte-pair alignment.
        let merged_idx = B::and_const(B::shr_const(windows, 2), t.merged.gather_index_mask());
        let pair = B::gather_u16(t.merged.bytes(), merged_idx);
        let f1_bytes = B::and_const(pair, 0xff);
        let f2_bytes = B::shr_const(pair, 8);

        let mut mask_short = 0u32;
        if t.has_short {
            mask_short = B::test_window_bits(f1_bytes, windows);
            if STORE && mask_short != 0 {
                B::compress_store(mask_short, base as u32, &mut scratch.a_short);
            }
        }

        let mut mask_long = 0u32;
        if t.has_long {
            let mask2 = B::test_window_bits(f2_bytes, windows);
            // Proceed to the third filter only if at least one lane passed
            // filter 2; the evaluation is then speculative over *all* lanes
            // and masked afterwards (the paper found this cheaper than
            // compacting the register).
            if mask2 != 0 {
                let windows4 = B::windows4(haystack, base);
                let windows4 = if FOLD {
                    B::to_ascii_lower(windows4)
                } else {
                    windows4
                };
                let f3_bits = t.filter3.bits_log2();
                let hashes = B::hash_mul_shift(windows4, HASH_MULTIPLIER, 32 - f3_bits, u32::MAX);
                let f3_idx = B::shr_const(hashes, 3);
                let f3_bytes = B::gather_bytes(t.filter3.bytes(), f3_idx);
                mask_long = B::test_window_bits(f3_bytes, hashes) & mask2;
                scratch.filter3_blocks += 1;
                scratch.useful_lanes += mask2.count_ones() as u64;
                if STORE && mask_long != 0 {
                    B::compress_store(mask_long, base as u32, &mut scratch.a_long);
                }
            }
        }
        (mask_short, mask_long)
    }

    /// Scalar continuation of the filtering round: positions
    /// `start..min(end, n - 1)` that no vector block covered, plus — only
    /// when `end` is the end of the input — the final byte, which has no
    /// 2-byte window and goes straight to the short array.
    fn filter_scalar_range<const FOLD: bool>(
        t: &SPatchTables,
        haystack: &[u8],
        start: usize,
        end: usize,
        scratch: &mut Scratch,
    ) {
        let n = haystack.len();
        if n == 0 {
            return;
        }
        for i in start..end.min(n - 1) {
            let b0 = fold_byte(haystack[i], FOLD);
            let b1 = fold_byte(haystack[i + 1], FOLD);
            let window = u16::from_le_bytes([b0, b1]);
            if t.has_short && t.filter1.contains(window) {
                scratch.a_short.push(i as u32);
            }
            if t.has_long && t.filter2.contains(window) && i + 4 <= n {
                let window4 = u32::from_le_bytes([
                    b0,
                    b1,
                    fold_byte(haystack[i + 2], FOLD),
                    fold_byte(haystack[i + 3], FOLD),
                ]);
                if t.filter3.contains(window4) {
                    scratch.a_long.push(i as u32);
                }
            }
        }
        if end == n && t.has_short {
            scratch.a_short.push((n - 1) as u32);
        }
    }

    /// **Vectorized filtering round** (Algorithm 2): fills the candidate
    /// arrays in `scratch`. Dispatches to the folded (`nocase`-capable) or
    /// byte-exact kernel depending on how the tables were built, so
    /// case-sensitive-only sets keep the historical code path.
    pub fn filter_round(&self, haystack: &[u8], scratch: &mut Scratch) {
        Self::filter_range_tables(&self.tables, haystack, 0, haystack.len(), scratch);
    }

    /// [`VPatch::filter_round`] restricted to window positions
    /// `start..end` — the per-chunk kernel the scan-graph filter op runs.
    /// `filter_range(0, n)` is exactly `filter_round`, and for any partition
    /// of `0..n` into `CHUNK_ALIGN`-aligned ranges the concatenated
    /// candidate arrays (and the filter-3 occupancy counters) are identical
    /// to one whole-input round: windows read *across* `end` (the haystack
    /// is whole, only the window start set is split), and the vector blocks
    /// tile the same `W`-aligned bases.
    ///
    /// [`CHUNK_ALIGN`]: mpm_graph::CHUNK_ALIGN
    pub fn filter_range(&self, haystack: &[u8], start: usize, end: usize, scratch: &mut Scratch) {
        Self::filter_range_tables(&self.tables, haystack, start, end, scratch);
    }

    /// Table-parameterized form of [`VPatch::filter_range`], callable from a
    /// graph op that shares the tables by `Arc` instead of borrowing the
    /// engine.
    pub(crate) fn filter_range_tables(
        t: &SPatchTables,
        haystack: &[u8],
        start: usize,
        end: usize,
        scratch: &mut Scratch,
    ) {
        if t.folded {
            Self::filter_range_impl::<true>(t, haystack, start, end, scratch);
        } else {
            Self::filter_range_impl::<false>(t, haystack, start, end, scratch);
        }
    }

    fn filter_range_impl<const FOLD: bool>(
        t: &SPatchTables,
        haystack: &[u8],
        start: usize,
        end: usize,
        scratch: &mut Scratch,
    ) {
        let n = haystack.len();
        debug_assert!(start <= end && end <= n);
        if n == 0 || start >= end {
            return;
        }
        assert!(
            n < u32::MAX as usize,
            "scan chunks must be smaller than 4 GiB"
        );
        let mut i = start;
        // The whole vector loop runs inside the backend's dispatch trampoline
        // so every gather/shuffle inlines into one kernel (see
        // `VectorBackend::dispatch`).
        B::dispatch(|| {
            // Manual 2× unroll: two independent gathers in flight per
            // iteration, as the paper does to exploit instruction-level
            // parallelism.
            while i + 2 * W <= end && i + 2 * W + 3 <= n {
                Self::process_block::<true, FOLD>(t, haystack, i, scratch);
                Self::process_block::<true, FOLD>(t, haystack, i + W, scratch);
                i += 2 * W;
            }
            while i + W <= end && i + W + 3 <= n {
                Self::process_block::<true, FOLD>(t, haystack, i, scratch);
                i += W;
            }
        });
        Self::filter_scalar_range::<FOLD>(t, haystack, i, end, scratch);
    }

    /// Filtering-only entry point for the Figure 6 experiments. Returns a
    /// checksum of the lane masks so the optimizer cannot discard the work in
    /// [`FilterOnlyMode::NoStores`] mode.
    ///
    /// Both modes run entirely in the caller's `scratch` (which is cleared on
    /// entry); `NoStores` leaves no candidate positions behind.
    pub fn filter_only(&self, haystack: &[u8], mode: FilterOnlyMode, scratch: &mut Scratch) -> u64 {
        if self.tables.folded {
            self.filter_only_impl::<true>(haystack, mode, scratch)
        } else {
            self.filter_only_impl::<false>(haystack, mode, scratch)
        }
    }

    fn filter_only_impl<const FOLD: bool>(
        &self,
        haystack: &[u8],
        mode: FilterOnlyMode,
        scratch: &mut Scratch,
    ) -> u64 {
        scratch.clear();
        let n = haystack.len();
        if n == 0 {
            return 0;
        }
        let t = &*self.tables;
        let mut checksum = 0u64;
        let mut i = 0usize;
        match mode {
            FilterOnlyMode::WithStores => {
                Self::filter_range_impl::<FOLD>(t, haystack, 0, n, scratch);
                checksum = scratch.candidates();
            }
            FilterOnlyMode::NoStores => {
                B::dispatch(|| {
                    // Same 2× unroll as the storing round so the two Figure 6
                    // configurations differ only in the stores.
                    while i + 2 * W + 3 <= n {
                        let (a1, a2) = Self::process_block::<false, FOLD>(t, haystack, i, scratch);
                        let (b1, b2) =
                            Self::process_block::<false, FOLD>(t, haystack, i + W, scratch);
                        checksum +=
                            (a1.count_ones() + a2.count_ones() + b1.count_ones() + b2.count_ones())
                                as u64;
                        i += 2 * W;
                    }
                    while i + W + 3 <= n {
                        let (m1, m2) = Self::process_block::<false, FOLD>(t, haystack, i, scratch);
                        checksum += (m1.count_ones() + m2.count_ones()) as u64;
                        i += W;
                    }
                });
                // The scalar tail runs through the caller's scratch (no
                // transient allocation); its candidates join the checksum and
                // the arrays are reset so no stores are observable.
                Self::filter_scalar_range::<FOLD>(t, haystack, i, n, scratch);
                checksum += scratch.candidates();
                scratch.begin_chunk();
            }
        }
        checksum
    }

    /// **Verification round**, batched: the candidate arrays the filtering
    /// round compacted are replayed through
    /// [`mpm_verify::Verifier::verify_short_batch`] /
    /// [`mpm_verify::Verifier::verify_long_batch`] on this engine's own
    /// backend — the same registers that filtered the input now gather the
    /// candidate windows back, hash the bucket indices `W` at a time, and
    /// the table walk is prefetch-pipelined `K` candidates deep. Returns the
    /// number of pattern comparisons performed (identical, by construction
    /// and by the differential suite, to the per-candidate count).
    pub fn verify_round(
        &self,
        haystack: &[u8],
        scratch: &Scratch,
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let v = self.tables.verifier();
        v.verify_short_batch::<B, W>(haystack, &scratch.a_short, out)
            + v.verify_long_batch::<B, W>(haystack, &scratch.a_long, out)
    }

    /// The historical per-candidate verification round (one serial
    /// [`mpm_verify::Verifier::verify_short`] / `verify_long` lookup per
    /// candidate, no prefetching, byte-loop compares). Kept as the reference
    /// the differential suite holds [`VPatch::verify_round`] to, and as the
    /// A/B baseline the `verify_round` Criterion bench and the
    /// `bench_baseline` verify-heavy rows measure the batched path against.
    pub fn verify_round_per_candidate(
        &self,
        haystack: &[u8],
        scratch: &Scratch,
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let v = self.tables.verifier();
        let mut comparisons = 0u64;
        for &pos in &scratch.a_short {
            comparisons += v.verify_short(haystack, pos as usize, out) as u64;
        }
        for &pos in &scratch.a_long {
            comparisons += v.verify_long(haystack, pos as usize, out) as u64;
        }
        comparisons
    }

    /// Full scan reusing caller-provided scratch. Candidate arrays are reset
    /// per call; the phase counters **accumulate** across calls (reset with
    /// [`Scratch::clear`]), so a streaming caller that pushes many chunks
    /// through one scratch reads whole-stream totals at the end.
    pub fn scan_with_scratch(
        &self,
        haystack: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<MatchEvent>,
    ) {
        scratch.begin_chunk();
        let t0 = Instant::now();
        self.filter_round(haystack, scratch);
        let t1 = Instant::now();
        self.verify_round(haystack, scratch, out);
        let t2 = Instant::now();
        scratch.filter_nanos += (t1 - t0).as_nanos() as u64;
        scratch.verify_nanos += (t2 - t1).as_nanos() as u64;
    }

    /// The pre-graph monolithic scan path (whole-input filter round, then
    /// one verify round through the thread-cached [`Scratch`]). Retained as
    /// the oracle the scan-graph differential suite holds the graph-routed
    /// [`Matcher::find_into`] to.
    pub fn find_into_legacy(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        scratch::with_cached_scratch(|scratch| {
            scratch.clear();
            scratch.reserve_for(haystack.len(), self.tables.has_short, self.tables.has_long);
            self.filter_round(haystack, scratch);
            self.verify_round(haystack, scratch, out);
        });
    }

    /// The pre-graph monolithic stats path; oracle counterpart of
    /// [`Matcher::scan_with_stats`] (timings excluded, counters exact).
    pub fn scan_with_stats_legacy(&self, haystack: &[u8]) -> MatcherStats {
        scratch::with_cached_scratch(|scratch| {
            scratch.clear();
            scratch.reserve_for(haystack.len(), self.tables.has_short, self.tables.has_long);
            let mut out = Vec::new();
            self.scan_with_scratch(haystack, scratch, &mut out);
            MatcherStats {
                bytes_scanned: haystack.len() as u64,
                candidates: scratch.candidates(),
                matches: out.len() as u64,
                filter_nanos: scratch.filter_nanos,
                verify_nanos: scratch.verify_nanos,
                filter3_blocks: scratch.filter3_blocks,
                useful_lanes: scratch.useful_lanes,
            }
        })
    }
}

impl<B: VectorBackend<W>, const W: usize> Matcher for VPatch<B, W> {
    fn name(&self) -> &'static str {
        "V-PATCH"
    }

    fn max_pattern_len(&self) -> usize {
        self.tables.max_pattern_len()
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        // Execute the scan-graph assembly through this thread's cached
        // scratchpad: chunked, and (config permitting) software-pipelined
        // across chunks.
        with_cached_scratchpad(|pad| self.graph.run(haystack, pad, out));
    }

    fn scan_with_stats(&self, haystack: &[u8]) -> MatcherStats {
        with_cached_scratchpad(|pad| {
            let mut out = Vec::new();
            self.graph.run(haystack, pad, &mut out);
            let c = pad.counters;
            MatcherStats {
                bytes_scanned: haystack.len() as u64,
                candidates: c.candidates,
                matches: out.len() as u64,
                filter_nanos: c.filter_nanos,
                verify_nanos: c.verify_nanos,
                filter3_blocks: c.filter3_blocks,
                useful_lanes: c.useful_lanes,
            }
        })
    }

    fn heap_bytes(&self) -> usize {
        self.memory_footprint().total()
    }

    fn memory_footprint(&self) -> mpm_patterns::MemoryFootprint {
        mpm_patterns::MemoryFootprint {
            filter_bytes: self.tables.filter_bytes(),
            verify_bytes: self.tables.table_bytes(),
            other_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatch::SPatch;
    use mpm_patterns::naive::naive_find_all;
    use mpm_simd::{Avx2Backend, Avx512Backend, ScalarBackend};

    fn mixed_set() -> PatternSet {
        PatternSet::from_literals(&[
            "a",
            "ab",
            "GET",
            "abcd",
            "attribute",
            "attack",
            "/etc/passwd",
            "xyz",
            "\x00\x01",
        ])
    }

    fn sample_input() -> Vec<u8> {
        let mut hay = Vec::new();
        for i in 0..200 {
            hay.extend_from_slice(b"GET /index.php?attr=attribute ");
            if i % 3 == 0 {
                hay.extend_from_slice(b"/etc/passwd attack ");
            }
            hay.push((i % 256) as u8);
            hay.push(0x01);
        }
        hay
    }

    #[test]
    fn scalar_backend_vpatch_equals_naive_and_spatch() {
        let set = mixed_set();
        let hay = sample_input();
        let expected = naive_find_all(&set, &hay);
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        assert_eq!(vp.find_all(&hay), expected);
        let sp = SPatch::build(&set);
        assert_eq!(sp.find_all(&hay), expected);
    }

    #[test]
    fn avx2_vpatch_equals_naive_when_available() {
        if !<Avx2Backend as VectorBackend<8>>::is_available() {
            return;
        }
        let set = mixed_set();
        let hay = sample_input();
        let vp = VPatch::<Avx2Backend, 8>::build(&set);
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn avx512_vpatch_equals_naive_when_available() {
        if !<Avx512Backend as VectorBackend<16>>::is_available() {
            return;
        }
        let set = mixed_set();
        let hay = sample_input();
        let vp = VPatch::<Avx512Backend, 16>::build(&set);
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn short_inputs_hit_the_scalar_tail_only() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        for hay in [
            &b""[..],
            b"a",
            b"ab",
            b"GET",
            b"abcd",
            b"xyzabc",
            b"0123456789",
            b"GET /etc",
        ] {
            assert_eq!(vp.find_all(hay), naive_find_all(&set, hay), "input {hay:?}");
        }
    }

    #[test]
    fn block_boundaries_do_not_lose_matches() {
        // Place matches exactly around multiples of W and 2W.
        let set = PatternSet::from_literals(&["boundary", "zz"]);
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        for offset in 0..40 {
            let mut hay = vec![b'.'; 96];
            let start = offset.min(hay.len() - 8);
            hay[start..start + 8].copy_from_slice(b"boundary");
            assert_eq!(
                vp.find_all(&hay),
                naive_find_all(&set, &hay),
                "offset {offset}"
            );
        }
    }

    #[test]
    fn stats_expose_useful_lane_occupancy() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let hay = sample_input();
        let stats = vp.scan_with_stats(&hay);
        assert!(stats.filter3_blocks > 0);
        assert!(stats.useful_lanes > 0);
        let frac = stats.useful_lane_fraction(8).unwrap();
        assert!(frac > 0.0 && frac <= 1.0);
        assert!(stats.filtering_time_fraction().is_some());
    }

    #[test]
    fn stats_are_per_scan_not_accumulated() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let hay = sample_input();
        let first = vp.scan_with_stats(&hay);
        let second = vp.scan_with_stats(&hay);
        // Identical scans through the cached scratch must report identical
        // per-scan counters, not running totals.
        assert_eq!(first.filter3_blocks, second.filter3_blocks);
        assert_eq!(first.useful_lanes, second.useful_lanes);
        assert_eq!(first.candidates, second.candidates);
    }

    #[test]
    fn scan_with_scratch_accumulates_counters_across_chunks() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let hay = sample_input();
        let mut scratch = Scratch::new();
        let mut out = Vec::new();
        vp.scan_with_scratch(&hay, &mut scratch, &mut out);
        let after_one = (scratch.filter3_blocks, scratch.useful_lanes);
        vp.scan_with_scratch(&hay, &mut scratch, &mut out);
        assert_eq!(scratch.filter3_blocks, 2 * after_one.0);
        assert_eq!(scratch.useful_lanes, 2 * after_one.1);
        // ... until the caller resets the stream counters explicitly.
        scratch.clear();
        assert_eq!(scratch.filter3_blocks, 0);
    }

    #[test]
    fn filter_only_modes_report_consistent_work() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let hay = sample_input();
        let mut scratch = Scratch::new();
        let with_stores = vp.filter_only(&hay, FilterOnlyMode::WithStores, &mut scratch);
        assert_eq!(with_stores, scratch.candidates());
        let mut scratch2 = Scratch::new();
        let no_stores = vp.filter_only(&hay, FilterOnlyMode::NoStores, &mut scratch2);
        // Same lane masks are computed either way, so the checksums agree.
        assert_eq!(no_stores, with_stores);
        // But no positions were stored in NoStores mode.
        assert_eq!(scratch2.candidates(), 0);
    }

    #[test]
    fn filter_only_no_stores_reuses_one_scratch_across_calls() {
        let set = mixed_set();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let hay = sample_input();
        let mut scratch = Scratch::new();
        let first = vp.filter_only(&hay, FilterOnlyMode::NoStores, &mut scratch);
        let again = vp.filter_only(&hay, FilterOnlyMode::NoStores, &mut scratch);
        assert_eq!(first, again, "checksums must not depend on scratch reuse");
        assert_eq!(scratch.candidates(), 0);
    }

    #[test]
    fn wide_scalar_width_sixteen_matches() {
        let set = mixed_set();
        let hay = sample_input();
        let vp = VPatch::<ScalarBackend, 16>::build(&set);
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
    }

    fn nocase_set() -> PatternSet {
        use mpm_patterns::Pattern;
        PatternSet::new(vec![
            Pattern::literal_nocase(*b"/Etc/Passwd"),
            Pattern::literal(*b"attribute"),
            Pattern::literal_nocase(*b"AtK"),
            Pattern::literal(*b"GET"),
            Pattern::literal_nocase(*b"z"),
        ])
    }

    fn nocase_input() -> Vec<u8> {
        let mut hay = Vec::new();
        for i in 0..120 {
            hay.extend_from_slice(b"get /ETC/passwd ATTRIBUTE attribute atk ATK Z ");
            if i % 4 == 0 {
                hay.extend_from_slice(b"GET /etc/PASSWD ");
            }
            hay.push(b'A' + (i % 26) as u8);
        }
        hay
    }

    #[test]
    fn nocase_matches_naive_on_scalar_backend() {
        let set = nocase_set();
        let hay = nocase_input();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        assert!(vp.tables().is_folded());
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
        let vp16 = VPatch::<ScalarBackend, 16>::build(&set);
        assert_eq!(vp16.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn nocase_matches_naive_on_avx2_when_available() {
        if !<Avx2Backend as VectorBackend<8>>::is_available() {
            return;
        }
        let set = nocase_set();
        let hay = nocase_input();
        let vp = VPatch::<Avx2Backend, 8>::build(&set);
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn nocase_matches_naive_on_avx512_when_available() {
        if !<Avx512Backend as VectorBackend<16>>::is_available() {
            return;
        }
        let set = nocase_set();
        let hay = nocase_input();
        let vp = VPatch::<Avx512Backend, 16>::build(&set);
        assert_eq!(vp.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn filter_only_modes_agree_on_folded_tables() {
        let set = nocase_set();
        let hay = nocase_input();
        let vp = VPatch::<ScalarBackend, 8>::build(&set);
        let mut scratch = Scratch::new();
        let with_stores = vp.filter_only(&hay, FilterOnlyMode::WithStores, &mut scratch);
        let mut scratch2 = Scratch::new();
        let no_stores = vp.filter_only(&hay, FilterOnlyMode::NoStores, &mut scratch2);
        assert_eq!(with_stores, no_stores);
        assert_eq!(scratch2.candidates(), 0);
    }

    #[test]
    fn long_only_and_short_only_rulesets() {
        let hay = sample_input();
        let long_only = PatternSet::from_literals(&["/etc/passwd", "attribute"]);
        let vp = VPatch::<ScalarBackend, 8>::build(&long_only);
        assert_eq!(vp.find_all(&hay), naive_find_all(&long_only, &hay));
        let short_only = PatternSet::from_literals(&["a", "GE", "xyz"]);
        let vp = VPatch::<ScalarBackend, 8>::build(&short_only);
        assert_eq!(vp.find_all(&hay), naive_find_all(&short_only, &hay));
    }
}
