//! S-PATCH: the scalar, vectorization-friendly two-round engine
//! (Algorithm 1 of the paper).

use crate::scratch::{self, Scratch};
use crate::tables::SPatchTables;
use mpm_graph::{with_cached_scratchpad, GraphConfig, ScanGraph};
use mpm_patterns::{fold_byte, MatchEvent, Matcher, MatcherStats, PatternSet};
use std::sync::Arc;
use std::time::Instant;

/// Scalar S-PATCH engine.
#[derive(Clone, Debug)]
pub struct SPatch {
    tables: Arc<SPatchTables>,
    /// The scan-graph assembly (`spatch:filter` → `patch:verify`) every
    /// `find_into` / `scan_with_stats` call executes; see
    /// `graph_ops`.
    graph: ScanGraph,
}

impl SPatch {
    /// Compiles S-PATCH for `set`.
    pub fn build(set: &PatternSet) -> Self {
        Self::from_tables(SPatchTables::build(set))
    }

    /// Builds from already-compiled tables (shared with V-PATCH in the
    /// benchmark harness so both engines use byte-identical filters).
    pub fn from_tables(tables: SPatchTables) -> Self {
        let tables = Arc::new(tables);
        let graph = crate::graph_ops::build_spatch_graph(&tables);
        SPatch { tables, graph }
    }

    /// The compiled tables.
    pub fn tables(&self) -> &SPatchTables {
        &self.tables
    }

    /// The scan-graph assembly this engine executes.
    pub fn graph(&self) -> &ScanGraph {
        &self.graph
    }

    /// The graph execution parameters (chunk size, overlap).
    pub fn graph_config(&self) -> GraphConfig {
        self.graph.config()
    }

    /// Overrides the graph execution parameters; the A/B harnesses use this
    /// to pin `overlap` on or off regardless of `MPM_GRAPH_OVERLAP`.
    pub fn set_graph_config(&mut self, config: GraphConfig) {
        self.graph.set_config(config);
    }

    /// **Filtering round** (lines 3–14 of Algorithm 1): sweeps the input
    /// through filters 1–3 and records candidate positions in
    /// `scratch.a_short` / `scratch.a_long`.
    ///
    /// When the tables are folded (the set contains a `nocase` pattern) the
    /// window bytes are ASCII-case-folded before every lookup; the two
    /// variants are monomorphized separately so a case-sensitive-only set
    /// runs exactly the historical byte-exact loop.
    pub fn filter_round(&self, haystack: &[u8], scratch: &mut Scratch) {
        Self::filter_range_tables(&self.tables, haystack, 0, haystack.len(), scratch);
    }

    /// [`SPatch::filter_round`] restricted to window positions
    /// `start..end` — the per-chunk kernel the scan-graph filter op runs.
    /// For any partition of `0..n` the concatenated candidate arrays are
    /// identical to one whole-input round: window *bytes* are read across
    /// `end` (the haystack is whole, only the window start set is split).
    pub fn filter_range(&self, haystack: &[u8], start: usize, end: usize, scratch: &mut Scratch) {
        Self::filter_range_tables(&self.tables, haystack, start, end, scratch);
    }

    /// Table-parameterized form of [`SPatch::filter_range`], callable from a
    /// graph op that shares the tables by `Arc` instead of borrowing the
    /// engine.
    pub(crate) fn filter_range_tables(
        t: &SPatchTables,
        haystack: &[u8],
        start: usize,
        end: usize,
        scratch: &mut Scratch,
    ) {
        if t.folded {
            Self::filter_range_impl::<true>(t, haystack, start, end, scratch);
        } else {
            Self::filter_range_impl::<false>(t, haystack, start, end, scratch);
        }
    }

    fn filter_range_impl<const FOLD: bool>(
        t: &SPatchTables,
        haystack: &[u8],
        start: usize,
        end: usize,
        scratch: &mut Scratch,
    ) {
        let n = haystack.len();
        debug_assert!(start <= end && end <= n);
        if n == 0 || start >= end {
            return;
        }
        assert!(
            n < u32::MAX as usize,
            "scan chunks must be smaller than 4 GiB"
        );
        for i in start..end.min(n - 1) {
            let b0 = fold_byte(haystack[i], FOLD);
            let b1 = fold_byte(haystack[i + 1], FOLD);
            let window = u16::from_le_bytes([b0, b1]);
            if t.has_short && t.filter1.contains(window) {
                scratch.a_short.push(i as u32);
            }
            if t.has_long && t.filter2.contains(window) && i + 4 <= n {
                let window4 = u32::from_le_bytes([
                    b0,
                    b1,
                    fold_byte(haystack[i + 2], FOLD),
                    fold_byte(haystack[i + 3], FOLD),
                ]);
                if t.filter3.contains(window4) {
                    scratch.a_long.push(i as u32);
                }
            }
        }
        // The final byte has no 2-byte window; only 1-byte patterns can start
        // there, so it goes straight to the short candidate array (once, by
        // whichever range ends at the input's end).
        if end == n && t.has_short {
            scratch.a_short.push((n - 1) as u32);
        }
    }

    /// **Verification round** (lines 15–20 of Algorithm 1): replays the
    /// candidate arrays against the compact hash tables and appends confirmed
    /// matches to `out`. Returns the number of pattern comparisons performed.
    ///
    /// Since PR 5 the replay is **batched through the scalar backend**: the
    /// dependent table loads (bucket offsets, entry rows, arena lines) are
    /// software-prefetched `K` candidates ahead instead of serialising one
    /// candidate at a time. S-PATCH stays the paper's scalar engine — the
    /// index computation and compares use the scalar reference ops, no SIMD —
    /// but verification throughput is memory-latency-bound, not compute
    /// bound, so the pipeline alone recovers most of the batched win.
    pub fn verify_round(
        &self,
        haystack: &[u8],
        scratch: &Scratch,
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        use mpm_simd::ScalarBackend;
        let v = self.tables.verifier();
        v.verify_short_batch::<ScalarBackend, 8>(haystack, &scratch.a_short, out)
            + v.verify_long_batch::<ScalarBackend, 8>(haystack, &scratch.a_long, out)
    }

    /// The historical per-candidate verification round (no prefetching, one
    /// serial lookup per candidate); the differential-suite reference and
    /// bench A/B baseline, mirroring [`crate::VPatch::verify_round_per_candidate`].
    pub fn verify_round_per_candidate(
        &self,
        haystack: &[u8],
        scratch: &Scratch,
        out: &mut Vec<MatchEvent>,
    ) -> u64 {
        let v = self.tables.verifier();
        let mut comparisons = 0u64;
        for &pos in &scratch.a_short {
            comparisons += v.verify_short(haystack, pos as usize, out) as u64;
        }
        for &pos in &scratch.a_long {
            comparisons += v.verify_long(haystack, pos as usize, out) as u64;
        }
        comparisons
    }

    /// Full scan reusing caller-provided scratch (no allocation in the steady
    /// state). Candidate arrays are reset per call; the phase counters
    /// **accumulate** across calls (reset with [`Scratch::clear`]), so a
    /// streaming caller that pushes many chunks through one scratch reads
    /// whole-stream totals at the end.
    pub fn scan_with_scratch(
        &self,
        haystack: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<MatchEvent>,
    ) {
        scratch.begin_chunk();
        let t0 = Instant::now();
        self.filter_round(haystack, scratch);
        let t1 = Instant::now();
        self.verify_round(haystack, scratch, out);
        let t2 = Instant::now();
        scratch.filter_nanos += (t1 - t0).as_nanos() as u64;
        scratch.verify_nanos += (t2 - t1).as_nanos() as u64;
    }

    /// The pre-graph monolithic scan path (whole-input filter round, then
    /// one verify round through the thread-cached [`Scratch`]). Retained as
    /// the oracle the scan-graph differential suite holds the graph-routed
    /// [`Matcher::find_into`] to.
    pub fn find_into_legacy(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        scratch::with_cached_scratch(|scratch| {
            scratch.clear();
            scratch.reserve_for(haystack.len(), self.tables.has_short, self.tables.has_long);
            self.filter_round(haystack, scratch);
            self.verify_round(haystack, scratch, out);
        });
    }

    /// The pre-graph monolithic stats path; oracle counterpart of
    /// [`Matcher::scan_with_stats`] (timings excluded, counters exact).
    pub fn scan_with_stats_legacy(&self, haystack: &[u8]) -> MatcherStats {
        scratch::with_cached_scratch(|scratch| {
            scratch.clear();
            scratch.reserve_for(haystack.len(), self.tables.has_short, self.tables.has_long);
            let mut out = Vec::new();
            self.scan_with_scratch(haystack, scratch, &mut out);
            MatcherStats {
                bytes_scanned: haystack.len() as u64,
                candidates: scratch.candidates(),
                matches: out.len() as u64,
                filter_nanos: scratch.filter_nanos,
                verify_nanos: scratch.verify_nanos,
                ..MatcherStats::default()
            }
        })
    }
}

impl Matcher for SPatch {
    fn name(&self) -> &'static str {
        "S-PATCH"
    }

    fn max_pattern_len(&self) -> usize {
        self.tables.max_pattern_len()
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        // Execute the scan-graph assembly through this thread's cached
        // scratchpad: chunked, and (config permitting) software-pipelined
        // across chunks.
        with_cached_scratchpad(|pad| self.graph.run(haystack, pad, out));
    }

    fn scan_with_stats(&self, haystack: &[u8]) -> MatcherStats {
        with_cached_scratchpad(|pad| {
            let mut out = Vec::new();
            self.graph.run(haystack, pad, &mut out);
            let c = pad.counters;
            MatcherStats {
                bytes_scanned: haystack.len() as u64,
                candidates: c.candidates,
                matches: out.len() as u64,
                filter_nanos: c.filter_nanos,
                verify_nanos: c.verify_nanos,
                ..MatcherStats::default()
            }
        })
    }

    fn heap_bytes(&self) -> usize {
        self.memory_footprint().total()
    }

    fn memory_footprint(&self) -> mpm_patterns::MemoryFootprint {
        mpm_patterns::MemoryFootprint {
            filter_bytes: self.tables.filter_bytes(),
            verify_bytes: self.tables.table_bytes(),
            other_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;
    use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};

    fn mixed_set() -> PatternSet {
        PatternSet::from_literals(&[
            "a",
            "ab",
            "GET",
            "abcd",
            "attribute",
            "attack",
            "/etc/passwd",
            "xyz",
        ])
    }

    #[test]
    fn matches_naive_on_mixed_lengths_and_overlaps() {
        let set = mixed_set();
        let engine = SPatch::build(&set);
        let hay = b"GET /etc/passwd?attr=attribute attack aabcdxyz a";
        assert_eq!(engine.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn empty_and_single_byte_inputs() {
        let set = mixed_set();
        let engine = SPatch::build(&set);
        assert!(engine.find_all(b"").is_empty());
        assert_eq!(engine.find_all(b"a"), naive_find_all(&set, b"a"));
        assert_eq!(engine.find_all(b"ab"), naive_find_all(&set, b"ab"));
    }

    #[test]
    fn filter_round_never_misses_a_true_candidate() {
        // Exactness depends on the filtering round being a superset of the
        // true match positions; check it directly.
        let set = mixed_set();
        let engine = SPatch::build(&set);
        let hay = b"zzzGET /etc/passwd attack attribute ab a\x00\xffabcd";
        let mut scratch = Scratch::new();
        engine.filter_round(hay, &mut scratch);
        for m in naive_find_all(&set, hay) {
            let len = set.get(m.pattern).len();
            let arr = if len < 4 {
                &scratch.a_short
            } else {
                &scratch.a_long
            };
            assert!(
                arr.contains(&(m.start as u32)),
                "candidate for match {m:?} missing from the filter output"
            );
        }
    }

    #[test]
    fn two_rounds_are_separated_and_timed() {
        let set = mixed_set();
        let engine = SPatch::build(&set);
        let hay: Vec<u8> = b"GET /etc/passwd attack ".repeat(2000);
        let stats = engine.scan_with_stats(&hay);
        assert!(stats.filter_nanos > 0);
        assert!(stats.verify_nanos > 0);
        assert!(stats.candidates > 0);
        assert_eq!(stats.matches, naive_find_all(&set, &hay).len() as u64);
    }

    #[test]
    fn scratch_reuse_across_scans_gives_identical_results() {
        let set = mixed_set();
        let engine = SPatch::build(&set);
        let mut scratch = Scratch::new();
        let inputs: Vec<&[u8]> = vec![b"GET abcd", b"no hits here!!", b"attack attribute"];
        for hay in inputs {
            let mut out = Vec::new();
            engine.scan_with_scratch(hay, &mut scratch, &mut out);
            mpm_patterns::matcher::normalize_matches(&mut out);
            assert_eq!(out, naive_find_all(&set, hay));
        }
    }

    #[test]
    fn only_long_patterns_set_skips_short_work() {
        let set = PatternSet::from_literals(&["abcdef", "ghijkl"]);
        let engine = SPatch::build(&set);
        let mut scratch = Scratch::new();
        engine.filter_round(b"xxabcdefxx", &mut scratch);
        assert!(scratch.a_short.is_empty());
        assert!(!scratch.a_long.is_empty());
    }

    #[test]
    fn nocase_patterns_match_every_case_variant() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"/Etc/Passwd"),
            Pattern::literal(*b"GET"),
            Pattern::literal_nocase(*b"aTk"),
            Pattern::literal_nocase(*b"q"),
        ]);
        let engine = SPatch::build(&set);
        assert!(engine.tables().is_folded());
        let hay = b"get /ETC/PASSWD GET /etc/passwd ATK atk Q q";
        assert_eq!(engine.find_all(hay), naive_find_all(&set, hay));
        // The case-sensitive pattern must not have been folded into matching:
        // "get" occurs but only "GET" may be reported for it.
        let get_hits: Vec<_> = engine
            .find_all(hay)
            .into_iter()
            .filter(|m| m.pattern == mpm_patterns::PatternId(1))
            .collect();
        assert_eq!(get_hits.len(), 1);
        assert_eq!(get_hits[0].start, 16);
    }

    #[test]
    fn case_sensitive_only_sets_stay_unfolded_and_exact() {
        let set = mixed_set();
        let engine = SPatch::build(&set);
        assert!(!engine.tables().is_folded());
        // Upper-cased traffic must NOT match the case-sensitive rules.
        let hay = b"ATTACK ATTRIBUTE /ETC/PASSWD ABCD";
        assert_eq!(engine.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn synthetic_ruleset_equivalence() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(300, 17));
        let set = rs.http();
        let engine = SPatch::build(&set);
        let mut hay = Vec::new();
        for (_, p) in set.iter().take(40) {
            hay.extend_from_slice(b"GET /index.html ");
            hay.extend_from_slice(p.bytes());
        }
        assert_eq!(engine.find_all(&hay), naive_find_all(&set, &hay));
    }
}
