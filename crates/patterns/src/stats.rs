//! Pattern-length histograms and small statistics helpers shared by the
//! synthetic generators, the experiment harness, and EXPERIMENTS.md
//! reporting.

use crate::pattern::PatternSet;
use serde::{Deserialize, Serialize};

/// A histogram of pattern lengths with the bucket boundaries the paper's
/// analysis uses (the filter classes of DFC / S-PATCH).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LengthHistogram {
    /// Patterns of length 1.
    pub len1: usize,
    /// Patterns of length 2.
    pub len2: usize,
    /// Patterns of length 3.
    pub len3: usize,
    /// Patterns of length 4–7.
    pub len4_7: usize,
    /// Patterns of length 8–15.
    pub len8_15: usize,
    /// Patterns of length 16–31.
    pub len16_31: usize,
    /// Patterns of length 32 or more.
    pub len32_plus: usize,
}

impl LengthHistogram {
    /// Builds the histogram for a pattern set.
    pub fn of(set: &PatternSet) -> Self {
        let mut h = LengthHistogram::default();
        for p in set.patterns() {
            match p.len() {
                1 => h.len1 += 1,
                2 => h.len2 += 1,
                3 => h.len3 += 1,
                4..=7 => h.len4_7 += 1,
                8..=15 => h.len8_15 += 1,
                16..=31 => h.len16_31 += 1,
                _ => h.len32_plus += 1,
            }
        }
        h
    }

    /// Total number of patterns counted.
    pub fn total(&self) -> usize {
        self.len1
            + self.len2
            + self.len3
            + self.len4_7
            + self.len8_15
            + self.len16_31
            + self.len32_plus
    }

    /// Fraction of patterns that are "short" in the S-PATCH sense (1–3 bytes,
    /// handled by filter 1 and the short-pattern hash table).
    pub fn short_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.len1 + self.len2 + self.len3) as f64 / self.total() as f64
    }
}

/// Simple online mean/stddev accumulator (Welford), used by the benchmark
/// harness to report mean ± stddev over repeated runs as the paper does.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    #[test]
    fn histogram_buckets() {
        let set = PatternSet::from_literals(&[
            "a",
            "bb",
            "ccc",
            "dddd",
            "eeeeeeee",
            "ffffffffffffffff",
            "0123456789012345678901234567890123456789",
        ]);
        let h = LengthHistogram::of(&set);
        assert_eq!(h.len1, 1);
        assert_eq!(h.len2, 1);
        assert_eq!(h.len3, 1);
        assert_eq!(h.len4_7, 1);
        assert_eq!(h.len8_15, 1);
        assert_eq!(h.len16_31, 1);
        assert_eq!(h.len32_plus, 1);
        assert_eq!(h.total(), 7);
        let frac = h.short_fraction();
        assert!((frac - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let set = PatternSet::new(vec![]);
        let h = LengthHistogram::of(&set);
        assert_eq!(h.total(), 0);
        assert_eq!(h.short_fraction(), 0.0);
    }

    #[test]
    fn running_stats_mean_and_stddev() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        let empty = RunningStats::new();
        assert_eq!(empty.stddev(), 0.0);
    }
}
