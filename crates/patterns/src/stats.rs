//! Pattern-length histograms and small statistics helpers shared by the
//! synthetic generators, the experiment harness, and EXPERIMENTS.md
//! reporting.

use crate::pattern::PatternSet;
use serde::{Deserialize, Serialize};

/// A histogram of pattern lengths with the bucket boundaries the paper's
/// analysis uses (the filter classes of DFC / S-PATCH).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LengthHistogram {
    /// Patterns of length 1.
    pub len1: usize,
    /// Patterns of length 2.
    pub len2: usize,
    /// Patterns of length 3.
    pub len3: usize,
    /// Patterns of length 4–7.
    pub len4_7: usize,
    /// Patterns of length 8–15.
    pub len8_15: usize,
    /// Patterns of length 16–31.
    pub len16_31: usize,
    /// Patterns of length 32 or more.
    pub len32_plus: usize,
}

impl LengthHistogram {
    /// Builds the histogram for a pattern set.
    pub fn of(set: &PatternSet) -> Self {
        let mut h = LengthHistogram::default();
        for p in set.patterns() {
            match p.len() {
                1 => h.len1 += 1,
                2 => h.len2 += 1,
                3 => h.len3 += 1,
                4..=7 => h.len4_7 += 1,
                8..=15 => h.len8_15 += 1,
                16..=31 => h.len16_31 += 1,
                _ => h.len32_plus += 1,
            }
        }
        h
    }

    /// Total number of patterns counted.
    pub fn total(&self) -> usize {
        self.len1
            + self.len2
            + self.len3
            + self.len4_7
            + self.len8_15
            + self.len16_31
            + self.len32_plus
    }

    /// Fraction of patterns that are "short" in the S-PATCH sense (1–3 bytes,
    /// handled by filter 1 and the short-pattern hash table).
    pub fn short_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.len1 + self.len2 + self.len3) as f64 / self.total() as f64
    }
}

/// Simple online mean/stddev accumulator (Welford), used by the benchmark
/// harness to report mean ± stddev over repeated runs as the paper does.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two octave
/// is split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// quantization error at `2^-SUB_BITS` (~3.2%).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered: values up to `2^(OCTAVES + SUB_BITS)` nanoseconds land
/// in their own bucket; anything larger saturates into the last one. 58
/// octaves cover the full `u64` nanosecond range.
const OCTAVES: usize = 64 - SUB_BITS as usize;
const BUCKETS: usize = OCTAVES * SUB;

/// HDR-style log-linear histogram of per-packet latencies in nanoseconds.
///
/// Values below `2 * 2^SUB_BITS` (= 64 ns) are recorded exactly; above
/// that, each power-of-two octave is split into 32 linear sub-buckets, so
/// any reported percentile is within ~3.2% of the true value. Recording is
/// a shift, a mask and one counter increment — cheap enough for the
/// per-packet hot path — and two histograms recorded on different worker
/// threads [`merge`](LatencyHistogram::merge) into one by adding counters,
/// which is how the sharded pipeline aggregates per-worker latency into a
/// global p50/p99/p999 without cross-thread synchronization during the run.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket `nanos` falls into.
    fn bucket_of(nanos: u64) -> usize {
        if nanos < (2 * SUB) as u64 {
            // The first two octaves are exact: bucket == value.
            nanos as usize
        } else {
            // The top set bit picks the octave; the SUB_BITS below it pick
            // the linear sub-bucket. mantissa is in [SUB, 2*SUB).
            let shift = (63 - nanos.leading_zeros()) - SUB_BITS;
            let mantissa = (nanos >> shift) as usize;
            ((shift as usize) * SUB + mantissa).min(BUCKETS - 1)
        }
    }

    /// Upper edge (inclusive) of bucket `i` — the conservative value
    /// percentile queries report.
    fn bucket_upper(i: usize) -> u64 {
        if i < 2 * SUB {
            i as u64
        } else {
            // Inverse of bucket_of: i = shift*SUB + mantissa with mantissa
            // in [SUB, 2*SUB), so shift = i/SUB - 1.
            let shift = (i / SUB - 1) as u32;
            let mantissa = (i % SUB + SUB) as u64;
            // Everything in the bucket is <= ((mantissa+1) << shift) - 1.
            ((mantissa + 1) << shift) - 1
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.max = self.max.max(nanos);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded observation (exact, not bucketed). 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded observations in nanoseconds. 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The latency at quantile `q` in `[0, 1]` — the smallest bucket upper
    /// edge such that at least `q * count` observations are at or below it
    /// (within the ~3.2% bucket resolution). 0 if the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into the fixed summary quantiles.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_ns: self.percentile(0.50),
            p99_ns: self.percentile(0.99),
            p999_ns: self.percentile(0.999),
            max_ns: self.max,
            mean_ns: self.mean(),
        }
    }
}

/// Fixed-quantile condensation of a [`LatencyHistogram`], ready for JSON
/// reporting. Summaries of different histograms cannot be merged (quantiles
/// don't add) — merge the histograms, then summarize.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Largest observed latency in nanoseconds (exact).
    pub max_ns: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    #[test]
    fn histogram_buckets() {
        let set = PatternSet::from_literals(&[
            "a",
            "bb",
            "ccc",
            "dddd",
            "eeeeeeee",
            "ffffffffffffffff",
            "0123456789012345678901234567890123456789",
        ]);
        let h = LengthHistogram::of(&set);
        assert_eq!(h.len1, 1);
        assert_eq!(h.len2, 1);
        assert_eq!(h.len3, 1);
        assert_eq!(h.len4_7, 1);
        assert_eq!(h.len8_15, 1);
        assert_eq!(h.len16_31, 1);
        assert_eq!(h.len32_plus, 1);
        assert_eq!(h.total(), 7);
        let frac = h.short_fraction();
        assert!((frac - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let set = PatternSet::new(vec![]);
        let h = LengthHistogram::of(&set);
        assert_eq!(h.total(), 0);
        assert_eq!(h.short_fraction(), 0.0);
    }

    #[test]
    fn latency_histogram_is_exact_below_64ns() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.max(), 63);
        // Every value below 2*SUB lives in its own bucket, so quantiles are
        // exact: the q-quantile of {0..63} is ceil(q*64)-1.
        for (q, expect) in [(0.5, 31), (0.25, 15), (1.0, 63)] {
            assert_eq!(h.percentile(q), expect, "q={q}");
        }
    }

    #[test]
    fn latency_histogram_error_is_bounded() {
        // Across the log-bucketed range, the reported percentile must be
        // >= the true value and within the 2^-SUB_BITS sub-bucket bound.
        for exp in [7u32, 10, 13, 17, 20, 24, 30] {
            let v = (1u64 << exp) + (1 << (exp - 2)) + 3;
            let mut h = LatencyHistogram::new();
            h.record(v);
            // A far-off outlier keeps the exact-max clamp away from v's
            // bucket, so the median reports v's bucket upper edge.
            h.record(u64::MAX / 2);
            let got = h.percentile(0.5);
            assert!(got >= v, "reported {got} < recorded {v}");
            assert!(
                (got - v) as f64 <= v as f64 / 32.0 + 1.0,
                "error too large: recorded {v}, reported {got}"
            );
            assert_eq!(h.count(), 2);
        }
    }

    #[test]
    fn latency_histogram_merge_equals_recording_into_one() {
        let values: Vec<u64> = (0..2000u64).map(|i| i * i % 77_777 + 1).collect();
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.max(), whole.max());
        assert_eq!(left.mean(), whole.mean());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(left.percentile(q), whole.percentile(q), "q={q}");
        }
    }

    #[test]
    fn latency_percentiles_are_monotone_and_summary_agrees() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 13 % 500_000);
        }
        let mut last = 0;
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "percentiles must be monotone in q");
            last = p;
        }
        let s = h.summary();
        assert_eq!(s.count, h.count());
        assert_eq!(s.p50_ns, h.percentile(0.5));
        assert_eq!(s.p99_ns, h.percentile(0.99));
        assert_eq!(s.p999_ns, h.percentile(0.999));
        assert_eq!(s.max_ns, h.max());
        assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
        let empty = LatencyHistogram::new();
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.summary(), LatencySummary::default());
    }

    #[test]
    fn running_stats_mean_and_stddev() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935299395).abs() < 1e-9);
        let empty = RunningStats::new();
        assert_eq!(empty.stddev(), 0.0);
    }
}
