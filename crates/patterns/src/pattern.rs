//! Core pattern types: [`Pattern`], [`PatternId`], [`PatternSet`] and
//! [`ProtocolGroup`].
//!
//! A pattern is a byte string (a Snort `content:` string), matched either
//! byte-exactly or — when its `nocase` flag is set, mirroring Snort's
//! `nocase;` modifier — ASCII-case-insensitively. The paper's engines are all
//! *exact multiple pattern matchers*: given a set of patterns and an input
//! stream, report every `(pattern, position)` at which the pattern occurs
//! under its own case rule. Engines implement mixed sets with the
//! *filter-folded / verify-exact* design: filter tables are built over
//! ASCII-case-folded bytes whenever the set contains a `nocase` pattern
//! (folding only ever adds candidates), and per-pattern verification
//! ([`Pattern::matches_at`]) restores each pattern's exact semantics.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// ASCII-case-folds `b` when `folded` is true; identity otherwise.
///
/// The one case-folding rule of the filter-folded / verify-exact design:
/// every engine's table builder and scan loop folds through this helper, so
/// the filter bytes and the verification tables can never disagree about
/// what "folded" means. Hot loops pass a `const FOLD: bool` straight
/// through — monomorphization constant-folds the branch away.
#[inline(always)]
pub fn fold_byte(b: u8, folded: bool) -> u8 {
    if folded {
        b.to_ascii_lowercase()
    } else {
        b
    }
}

/// Identifier of a pattern inside a [`PatternSet`].
///
/// Ids are dense indices (`0..set.len()`), which lets the engines use them
/// directly as array indices in their verification structures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Protocol/service group a pattern belongs to.
///
/// Snort organises rules in groups and only evaluates the groups relevant to
/// the traffic being inspected (the paper matches HTTP traffic against the
/// HTTP-related patterns plus the protocol-agnostic ones). The synthetic
/// rulesets reproduce that grouping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ProtocolGroup {
    /// HTTP-related rules (web-server, web-client, web-cgi, ...).
    Http,
    /// DNS-related rules.
    Dns,
    /// FTP-related rules.
    Ftp,
    /// SMTP / mail rules.
    Smtp,
    /// Rules that apply to any traffic (protocol-agnostic payload content).
    Any,
    /// Everything else (scada, netbios, policy, ...).
    Other,
}

impl ProtocolGroup {
    /// All groups, in a stable order.
    pub const ALL: [ProtocolGroup; 6] = [
        ProtocolGroup::Http,
        ProtocolGroup::Dns,
        ProtocolGroup::Ftp,
        ProtocolGroup::Smtp,
        ProtocolGroup::Any,
        ProtocolGroup::Other,
    ];
}

impl fmt::Display for ProtocolGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolGroup::Http => "http",
            ProtocolGroup::Dns => "dns",
            ProtocolGroup::Ftp => "ftp",
            ProtocolGroup::Smtp => "smtp",
            ProtocolGroup::Any => "any",
            ProtocolGroup::Other => "other",
        };
        f.write_str(s)
    }
}

/// A single pattern: a byte string plus its matching rule (byte-exact or
/// ASCII-case-insensitive).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Pattern {
    /// The literal bytes to search for. Never empty.
    bytes: Vec<u8>,
    /// The protocol group this pattern belongs to.
    group: ProtocolGroup,
    /// True if the pattern matches ASCII-case-insensitively (Snort
    /// `nocase;`). False — the default — means byte-exact matching.
    nocase: bool,
}

impl Pattern {
    /// Creates a new byte-exact pattern from raw bytes.
    ///
    /// # Panics
    /// Panics if `bytes` is empty — empty patterns match everywhere and are
    /// rejected by Snort as well.
    pub fn new(bytes: impl Into<Vec<u8>>, group: ProtocolGroup) -> Self {
        let bytes = bytes.into();
        assert!(!bytes.is_empty(), "patterns must be non-empty");
        Pattern {
            bytes,
            group,
            nocase: false,
        }
    }

    /// Convenience constructor for a protocol-agnostic byte-exact pattern.
    pub fn literal(bytes: impl Into<Vec<u8>>) -> Self {
        Pattern::new(bytes, ProtocolGroup::Any)
    }

    /// Convenience constructor for a protocol-agnostic case-insensitive
    /// pattern (shorthand for `Pattern::literal(..).with_nocase(true)`).
    pub fn literal_nocase(bytes: impl Into<Vec<u8>>) -> Self {
        Pattern::literal(bytes).with_nocase(true)
    }

    /// Returns the pattern with its case-insensitivity flag set to `nocase`.
    pub fn with_nocase(mut self, nocase: bool) -> Self {
        self.nocase = nocase;
        self
    }

    /// The pattern bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Pattern length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always false: empty patterns cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The protocol group of this pattern.
    #[inline]
    pub fn group(&self) -> ProtocolGroup {
        self.group
    }

    /// True if this pattern matches ASCII-case-insensitively (Snort's
    /// `nocase;` modifier).
    #[inline]
    pub fn is_nocase(&self) -> bool {
        self.nocase
    }

    /// Tests whether this pattern occurs at `pos` in `haystack`, honouring
    /// the pattern's own case rule (byte-exact, or ASCII-case-insensitive
    /// for `nocase` patterns). This is the per-pattern verification step of
    /// the filter-folded / verify-exact design; every engine's verification
    /// phase reduces to it.
    #[inline]
    pub fn matches_at(&self, haystack: &[u8], pos: usize) -> bool {
        match haystack.get(pos..pos + self.bytes.len()) {
            Some(window) => self.matches_window(window),
            None => false,
        }
    }

    /// Tests whether `window` (exactly `self.len()` bytes of input) matches
    /// this pattern under its case rule.
    #[inline]
    pub fn matches_window(&self, window: &[u8]) -> bool {
        debug_assert_eq!(window.len(), self.bytes.len());
        if self.nocase {
            window.eq_ignore_ascii_case(&self.bytes)
        } else {
            window == &self.bytes[..]
        }
    }

    /// True if this is a "short" pattern in the paper's sense (1–3 bytes),
    /// i.e. it is handled by filter 1 of S-PATCH / V-PATCH.
    #[inline]
    pub fn is_short(&self) -> bool {
        self.bytes.len() < 4
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for &b in &self.bytes {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{:02x}", b)?;
            }
        }
        if self.nocase {
            write!(f, "\" ({}, nocase)", self.group)
        } else {
            write!(f, "\" ({})", self.group)
        }
    }
}

/// Summary statistics of a pattern set, used by the experiment harness and
/// reported in EXPERIMENTS.md.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternSetSummary {
    /// Number of patterns.
    pub count: usize,
    /// Number of short (1–3 byte) patterns.
    pub short_count: usize,
    /// Minimum pattern length.
    pub min_len: usize,
    /// Maximum pattern length.
    pub max_len: usize,
    /// Mean pattern length.
    pub mean_len: f64,
    /// Total bytes over all patterns.
    pub total_bytes: usize,
    /// Number of distinct first-two-byte prefixes (what the 2-byte direct
    /// filters index on; governs the filter hit rate).
    pub distinct_two_byte_prefixes: usize,
    /// Per-group pattern counts.
    pub per_group: BTreeMap<String, usize>,
}

/// An immutable, validated collection of patterns shared by all engines.
///
/// `PatternSet` deduplicates nothing and preserves insertion order: ids are
/// assigned densely in the order patterns were added, so the same set always
/// produces the same ids (important for comparing engine outputs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    /// Per-pattern rule binding: `rule_of[i]` is the index of the rule
    /// pattern `i` anchors (see [`crate::rule::RuleSet::anchors`]). Empty
    /// for ordinary (non-rule-bound) sets.
    rule_of: Vec<u32>,
}

impl PatternSet {
    /// Creates a pattern set from a list of patterns.
    ///
    /// Duplicate byte strings are allowed (real rulesets contain duplicates in
    /// different rules); every occurrence gets its own id and engines report
    /// matches for each of them.
    pub fn new(patterns: Vec<Pattern>) -> Self {
        PatternSet {
            patterns,
            rule_of: Vec::new(),
        }
    }

    /// Attaches per-pattern rule bindings: `rule_of[i]` names the rule
    /// pattern `i` anchors. Built by [`crate::rule::RuleSet::new`]; derived
    /// sets ([`PatternSet::select_group`], [`PatternSet::random_subset`])
    /// drop the bindings, since the pattern↔rule correspondence no longer
    /// holds there.
    ///
    /// # Panics
    /// Panics unless `rule_of` has exactly one entry per pattern.
    pub fn with_rule_bindings(mut self, rule_of: Vec<u32>) -> Self {
        assert_eq!(
            rule_of.len(),
            self.patterns.len(),
            "need exactly one rule binding per pattern"
        );
        self.rule_of = rule_of;
        self
    }

    /// True if the set carries an anchor→rule mapping.
    #[inline]
    pub fn is_rule_bound(&self) -> bool {
        !self.rule_of.is_empty()
    }

    /// The rule the given pattern anchors, when the set is rule-bound.
    #[inline]
    pub fn rule_binding(&self, id: PatternId) -> Option<crate::rule::RuleId> {
        self.rule_of
            .get(id.index())
            .map(|&r| crate::rule::RuleId(r))
    }

    /// The full anchor→rule mapping (`None` for ordinary sets).
    pub fn rule_bindings(&self) -> Option<&[u32]> {
        if self.rule_of.is_empty() {
            None
        } else {
            Some(&self.rule_of)
        }
    }

    /// Builds a set from plain string literals (protocol group `Any`).
    pub fn from_literals<S: AsRef<[u8]>>(literals: &[S]) -> Self {
        PatternSet::new(
            literals
                .iter()
                .map(|s| Pattern::literal(s.as_ref().to_vec()))
                .collect(),
        )
    }

    /// Number of patterns in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if the set contains no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern with the given id.
    #[inline]
    pub fn get(&self, id: PatternId) -> &Pattern {
        &self.patterns[id.index()]
    }

    /// Iterates over `(id, pattern)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &Pattern)> {
        self.patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (PatternId(i as u32), p))
    }

    /// All patterns as a slice (index == id).
    #[inline]
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// True if any pattern in the set matches case-insensitively. Engines
    /// use this at build time to decide whether to compile the folded
    /// (case-insensitive-capable) tables or today's byte-exact fast path —
    /// a case-sensitive-only set never pays for folding.
    pub fn has_nocase(&self) -> bool {
        self.patterns.iter().any(|p| p.is_nocase())
    }

    /// Returns a new set containing only the patterns of `group`, plus the
    /// protocol-agnostic (`Any`) patterns — mirroring how Snort pairs traffic
    /// with the relevant rule groups (paper §V-A, "Patterns").
    pub fn select_group(&self, group: ProtocolGroup) -> PatternSet {
        let patterns = self
            .patterns
            .iter()
            .filter(|p| p.group() == group || p.group() == ProtocolGroup::Any)
            .cloned()
            .collect();
        PatternSet::new(patterns)
    }

    /// Returns a new set with the first `n` patterns of a deterministic
    /// pseudo-random permutation of this set, as used for the
    /// "effect of the number of patterns" sweeps (Figure 5a/5b).
    ///
    /// The permutation depends only on `seed`, so subsets are reproducible
    /// and nested: the 5 000-pattern subset for a given seed is a superset of
    /// the 2 000-pattern subset for the same seed.
    pub fn random_subset(&self, n: usize, seed: u64) -> PatternSet {
        let mut order: Vec<usize> = (0..self.patterns.len()).collect();
        // Fisher-Yates with SplitMix64: no external dependency needed here and
        // the permutation is stable across platforms.
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let n = n.min(order.len());
        let patterns = order[..n]
            .iter()
            .map(|&i| self.patterns[i].clone())
            .collect();
        PatternSet::new(patterns)
    }

    /// Computes summary statistics of the set.
    pub fn summary(&self) -> PatternSetSummary {
        use std::collections::BTreeSet;
        let mut prefixes = BTreeSet::new();
        let mut per_group: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut short = 0usize;
        for p in &self.patterns {
            total += p.len();
            min_len = min_len.min(p.len());
            max_len = max_len.max(p.len());
            if p.is_short() {
                short += 1;
            }
            let pre = if p.len() >= 2 {
                u16::from_le_bytes([p.bytes()[0], p.bytes()[1]])
            } else {
                p.bytes()[0] as u16
            };
            prefixes.insert((p.len() >= 2, pre));
            *per_group.entry(p.group().to_string()).or_insert(0) += 1;
        }
        if self.patterns.is_empty() {
            min_len = 0;
        }
        PatternSetSummary {
            count: self.patterns.len(),
            short_count: short,
            min_len,
            max_len,
            mean_len: if self.patterns.is_empty() {
                0.0
            } else {
                total as f64 / self.patterns.len() as f64
            },
            total_bytes: total,
            distinct_two_byte_prefixes: prefixes.len(),
            per_group,
        }
    }
}

impl FromIterator<Pattern> for PatternSet {
    fn from_iter<T: IntoIterator<Item = Pattern>>(iter: T) -> Self {
        PatternSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_basic_properties() {
        let p = Pattern::new(*b"GET", ProtocolGroup::Http);
        assert_eq!(p.len(), 3);
        assert!(p.is_short());
        assert!(!p.is_empty());
        assert_eq!(p.group(), ProtocolGroup::Http);
        assert_eq!(p.bytes(), b"GET");

        let q = Pattern::literal(*b"User-Agent: Mozilla");
        assert!(!q.is_short());
        assert_eq!(q.group(), ProtocolGroup::Any);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        let _ = Pattern::literal(Vec::new());
    }

    #[test]
    fn pattern_display_escapes_binary() {
        let p = Pattern::literal(vec![b'A', 0x00, 0xff, b'"']);
        let s = format!("{p}");
        assert!(s.contains("\\x00"));
        assert!(s.contains("\\xff"));
        assert!(s.contains("\\x22"));
    }

    #[test]
    fn set_ids_are_dense_and_ordered() {
        let set = PatternSet::from_literals(&["abc", "de", "f"]);
        assert_eq!(set.len(), 3);
        let ids: Vec<u32> = set.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(set.get(PatternId(1)).bytes(), b"de");
    }

    #[test]
    fn select_group_keeps_any_patterns() {
        let set = PatternSet::new(vec![
            Pattern::new(*b"GET /", ProtocolGroup::Http),
            Pattern::new(*b"MAIL FROM", ProtocolGroup::Smtp),
            Pattern::new(*b"evil", ProtocolGroup::Any),
        ]);
        let http = set.select_group(ProtocolGroup::Http);
        assert_eq!(http.len(), 2);
        assert!(http.iter().any(|(_, p)| p.bytes() == b"GET /"));
        assert!(http.iter().any(|(_, p)| p.bytes() == b"evil"));
    }

    #[test]
    fn random_subset_is_deterministic_and_bounded() {
        let lits: Vec<String> = (0..100).map(|i| format!("pattern-{i:04}")).collect();
        let set = PatternSet::from_literals(&lits);
        let a = set.random_subset(10, 42);
        let b = set.random_subset(10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let c = set.random_subset(10, 43);
        assert_ne!(a, c, "different seeds should give different subsets");
        // Asking for more than available just returns everything.
        assert_eq!(set.random_subset(1000, 1).len(), 100);
    }

    #[test]
    fn nocase_flag_controls_matching_semantics() {
        let exact = Pattern::literal(*b"GeT");
        assert!(!exact.is_nocase());
        assert!(exact.matches_at(b"..GeT..", 2));
        assert!(!exact.matches_at(b"..GET..", 2));
        assert!(
            !exact.matches_at(b"..GeT", 4),
            "window past end never matches"
        );

        let folded = Pattern::literal_nocase(*b"GeT");
        assert!(folded.is_nocase());
        for hay in [&b"get"[..], b"GET", b"gEt", b"GeT"] {
            assert!(folded.matches_at(hay, 0), "{hay:?}");
        }
        assert!(!folded.matches_at(b"ge7", 0));
    }

    #[test]
    fn nocase_only_folds_ascii_letters() {
        // 0xC0..0xDF must NOT be case-folded: matching is byte-level ASCII,
        // not Unicode-aware.
        let p = Pattern::literal_nocase(vec![0xC0u8, b'A']);
        assert!(p.matches_at(&[0xC0, b'a'], 0));
        assert!(!p.matches_at(&[0xE0, b'a'], 0));
    }

    #[test]
    fn set_has_nocase_reflects_any_flag() {
        let exact_only = PatternSet::from_literals(&["abc", "de"]);
        assert!(!exact_only.has_nocase());
        let mixed = PatternSet::new(vec![
            Pattern::literal(*b"abc"),
            Pattern::literal_nocase(*b"de"),
        ]);
        assert!(mixed.has_nocase());
    }

    #[test]
    fn display_marks_nocase_patterns() {
        let p = Pattern::literal_nocase(*b"GET");
        assert!(format!("{p}").contains("nocase"));
        let q = Pattern::literal(*b"GET");
        assert!(!format!("{q}").contains("nocase"));
    }

    #[test]
    fn summary_counts_are_consistent() {
        let set = PatternSet::new(vec![
            Pattern::new(*b"ab", ProtocolGroup::Http),
            Pattern::new(*b"abcd", ProtocolGroup::Http),
            Pattern::new(*b"x", ProtocolGroup::Any),
        ]);
        let s = set.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.short_count, 2);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 4);
        assert_eq!(s.total_bytes, 7);
        assert_eq!(s.per_group.get("http"), Some(&2));
        assert_eq!(s.per_group.get("any"), Some(&1));
    }
}
