//! Pattern-set substrate for the V-PATCH reproduction.
//!
//! This crate provides everything the matching engines need to know about
//! *what* they are matching:
//!
//! * [`Pattern`], [`PatternId`] and [`PatternSet`] — the exact byte patterns
//!   (Snort "content" strings) with protocol grouping, as used throughout the
//!   paper's evaluation;
//! * the [`Matcher`] trait and [`MatchEvent`] — the common interface every
//!   engine in this workspace implements (Aho-Corasick, DFC, Vector-DFC,
//!   S-PATCH, V-PATCH) so that their outputs can be compared byte-for-byte;
//! * [`naive::NaiveMatcher`] — an obviously-correct reference matcher used by
//!   the test suites as ground truth;
//! * [`rule`] — first-class multi-content rules with Snort's positional
//!   constraints (`offset`/`depth`/`distance`/`within`), anchor selection
//!   over set statistics, and a naive rule evaluator used as differential
//!   ground truth;
//! * [`snort`] — a parser for Snort rule syntax that extracts the exact-match
//!   `content:` strings (and, via [`snort::parse_ruleset`], whole
//!   multi-content rules), so real rulesets can be loaded when available;
//! * [`ports`] — a structured parser for the Snort rule *header* (protocol,
//!   port lists/ranges/negation, `$VAR` defaults, direction) with exact
//!   per-flow applicability ([`ports::RuleHeader::applies_to`]);
//! * [`group`] — [`group::GroupedRuleSet`], the port/protocol partitioning
//!   of a ruleset into per-group rule sets so a flow is scanned only
//!   against the groups that can match it;
//! * [`arena`] — [`arena::PatternArena`], the deduplicated shared byte
//!   store that keeps many per-group verification tables from multiplying
//!   pattern storage;
//! * [`synthetic`] — deterministic generators that reproduce the *structure*
//!   (count, length distribution, prefix collisions, protocol mix) of the
//!   Snort v2.9.7 ("S1") and ET-open 2.9.0 ("S2") rulesets used in the paper,
//!   which are not redistributable.
//!
//! The paper evaluates exact byte-level matching of thousands of patterns
//! against reassembled network streams; these types encode that model, plus
//! the per-pattern ASCII-case-insensitivity real Snort rules demand
//! ([`Pattern::is_nocase`], set by the parser from `nocase;` — see the
//! filter-folded / verify-exact contract in `DEVELOPMENT.md` for how the
//! engines implement it without slowing case-sensitive sets down).

#![warn(missing_docs)]

pub mod arena;
pub mod group;
pub mod matcher;
pub mod naive;
pub mod pattern;
pub mod ports;
pub mod rule;
pub mod snort;
pub mod stats;
pub mod synthetic;

pub use arena::{ArenaBuilder, PatternArena};
pub use group::{GroupKey, GroupedRuleSet, RuleGroup};
pub use matcher::{
    assert_footprint_consistent, MatchEvent, Matcher, MatcherStats, MemoryFootprint,
};
pub use naive::NaiveMatcher;
pub use pattern::{fold_byte, Pattern, PatternId, PatternSet, ProtocolGroup};
pub use ports::{Direction, FlowTuple, PortSpec, PortVars, Proto, RuleHeader};
pub use rule::{Rule, RuleContent, RuleId, RuleMatch, RuleSet};
pub use stats::{LatencyHistogram, LatencySummary};
pub use synthetic::{RulesetSpec, SyntheticRuleset};
