//! Structured Snort rule-header parsing: protocols, port specifications and
//! the per-flow applicability test that port-group scanning is built on.
//!
//! A Snort rule header has the shape
//!
//! ```text
//! action proto src_ip src_ports direction dst_ip dst_ports
//! ```
//!
//! and the port fields carry a small language of their own: single ports
//! (`80`), ranges (`1:1024`, `:1024`, `1024:`), `any`, negation (`!80`),
//! bracketed lists mixing all of those (`[80,8080,1:100,!90]`) and `$VAR`
//! references resolved against the deployment's variable definitions
//! (`$HTTP_PORTS`). This module parses that language into [`PortSpec`] —
//! normalized inclusive ranges plus a whole-spec negation flag — so that
//! "does this rule apply to a flow with these ports?" is an exact interval
//! query instead of the string heuristics the parser used before (which
//! classified port `8080` as HTTP because `"8080".contains("80")`).
//!
//! [`RuleHeader::applies_to`] is the single source of truth for rule↔flow
//! applicability; the port-group partitioning in [`crate::group`] is an
//! over-approximating index on top of it (a flow's selected groups always
//! contain every rule that applies), and grouped scanning re-checks
//! `applies_to` before reporting so the index never changes semantics.

use crate::pattern::ProtocolGroup;
use std::collections::BTreeMap;
use std::fmt;

/// Transport protocol of a rule header or a flow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Proto {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// ICMP (no ports; port specs on icmp rules are accepted and ignored by
    /// Snort, and [`PortSpec::matches`] treats the conventional port 0 the
    /// same way any other number is treated).
    Icmp,
    /// `ip` — matches traffic of any protocol.
    Ip,
}

impl Proto {
    /// Parses a protocol token (`tcp` / `udp` / `icmp` / `ip`,
    /// case-insensitive).
    pub fn parse(token: &str) -> Option<Proto> {
        match token.to_ascii_lowercase().as_str() {
            "tcp" => Some(Proto::Tcp),
            "udp" => Some(Proto::Udp),
            "icmp" => Some(Proto::Icmp),
            "ip" => Some(Proto::Ip),
            _ => None,
        }
    }

    /// True if a rule declared for `self` applies to traffic of
    /// `flow_proto`: `ip` rules apply to everything, otherwise the
    /// protocols must match exactly.
    #[inline]
    pub fn accepts(self, flow_proto: Proto) -> bool {
        self == Proto::Ip || self == flow_proto
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Tcp => "tcp",
            Proto::Udp => "udp",
            Proto::Icmp => "icmp",
            Proto::Ip => "ip",
        })
    }
}

/// Direction operator of a rule header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// `->`: source criteria on the left, destination on the right.
    Unidirectional,
    /// `<>`: the rule applies with the criteria in either orientation.
    Bidirectional,
}

/// The transport 5-tuple subset a scanner knows about a flow: protocol and
/// the two ports. This is what [`RuleHeader::applies_to`] and
/// [`crate::group::GroupedRuleSet::groups_for`] select on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowTuple {
    /// Transport protocol of the flow (a concrete protocol, not `ip`).
    pub proto: Proto,
    /// Source port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
}

impl FlowTuple {
    /// Creates a flow tuple.
    pub fn new(proto: Proto, src_port: u16, dst_port: u16) -> Self {
        FlowTuple {
            proto,
            src_port,
            dst_port,
        }
    }
}

/// A parsed port specification: normalized inclusive ranges with optional
/// per-item and whole-spec negation.
///
/// Matching semantics (`matches`): a port is matched when it is covered by
/// the included ranges (an empty include list means "any") **and** not
/// covered by the excluded ranges (`[1:100,!80]`); a leading `!` on the
/// whole spec (`!80`, `![80,443]`) then flips the result. `!any` is
/// rejected — it can never match and Snort rejects it too.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PortSpec {
    /// Normalized (sorted, merged) included ranges; empty means `any`.
    included: Vec<(u16, u16)>,
    /// Normalized excluded ranges (from `!item` inside a list).
    excluded: Vec<(u16, u16)>,
    /// Whole-spec negation (`!80`, `![..]`).
    negated: bool,
    /// Lower-cased `$VAR` names this spec referenced (for protocol
    /// classification; unknown variables resolve to `any`).
    vars: Vec<String>,
}

/// Deployment variable table for `$VAR` port references, with Snort-like
/// defaults for the well-known names. Unknown variables resolve to `any` —
/// the conservative choice: a rule whose ports we cannot pin down must stay
/// applicable to every flow rather than silently vanish.
#[derive(Clone, Debug)]
pub struct PortVars {
    vars: BTreeMap<String, Vec<(u16, u16)>>,
}

impl Default for PortVars {
    fn default() -> Self {
        let mut vars = BTreeMap::new();
        let mut def = |name: &str, ports: &[(u16, u16)]| {
            vars.insert(name.to_string(), ports.to_vec());
        };
        // The usual snort.conf defaults (trimmed to the ports that matter
        // for classification; single ports are degenerate ranges).
        def(
            "http_ports",
            &[
                (80, 80),
                (81, 81),
                (311, 311),
                (591, 591),
                (8000, 8000),
                (8008, 8008),
                (8080, 8080),
                (8888, 8888),
            ],
        );
        def("ftp_ports", &[(21, 21), (2100, 2100)]);
        def("smtp_ports", &[(25, 25), (465, 465), (587, 587)]);
        def("dns_ports", &[(53, 53)]);
        def("ssh_ports", &[(22, 22)]);
        def("sip_ports", &[(5060, 5061)]);
        def("oracle_ports", &[(1521, 1521)]);
        PortVars { vars }
    }
}

impl PortVars {
    /// An empty table: every `$VAR` resolves to `any`.
    pub fn empty() -> Self {
        PortVars {
            vars: BTreeMap::new(),
        }
    }

    /// Defines (or overrides) a variable as a list of inclusive ranges.
    pub fn define(&mut self, name: &str, ranges: &[(u16, u16)]) {
        self.vars.insert(name.to_ascii_lowercase(), ranges.to_vec());
    }

    /// The ranges of a variable, if defined (name is case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<&[(u16, u16)]> {
        self.vars
            .get(&name.to_ascii_lowercase())
            .map(|v| v.as_slice())
    }
}

/// Sorts and merges a list of inclusive ranges.
fn normalize(mut ranges: Vec<(u16, u16)>) -> Vec<(u16, u16)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u16, u16)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            // Adjacent or overlapping ranges fuse (saturating: 65535 has no
            // successor).
            Some((_, last_hi)) if lo <= last_hi.saturating_add(1) => {
                *last_hi = (*last_hi).max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// True if `port` falls in any of the (normalized) ranges.
fn covers(ranges: &[(u16, u16)], port: u16) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= port && port <= hi)
}

impl PortSpec {
    /// The `any` specification.
    pub fn any() -> Self {
        PortSpec::default()
    }

    /// A spec matching exactly one port.
    pub fn single(port: u16) -> Self {
        PortSpec {
            included: vec![(port, port)],
            ..PortSpec::default()
        }
    }

    /// Parses a port-field token of a rule header against `vars`.
    ///
    /// Accepted syntax: `any`, `N`, `N:M`, `:M`, `N:`, `$VAR`, `!spec`,
    /// and bracketed comma-separated lists `[item,item,...]` where each
    /// item is any of the above except another list (nesting is rejected).
    pub fn parse(token: &str, vars: &PortVars) -> Result<PortSpec, String> {
        let token = token.trim();
        if token.is_empty() {
            return Err("empty port specification".to_string());
        }
        let (negated, rest) = match token.strip_prefix('!') {
            Some(rest) => (true, rest.trim()),
            None => (false, token),
        };
        let mut spec = PortSpec {
            negated,
            ..PortSpec::default()
        };
        if rest.eq_ignore_ascii_case("any") {
            if negated {
                // `!any` matches nothing; Snort rejects it outright.
                return Err("'!any' can never match".to_string());
            }
            return Ok(spec);
        }
        if let Some(inner) = rest.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("unterminated port list {token:?}"))?;
            let mut included = Vec::new();
            let mut excluded = Vec::new();
            for item in inner.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    return Err(format!("empty item in port list {token:?}"));
                }
                if item.contains('[') {
                    return Err(format!("nested port lists are not supported: {token:?}"));
                }
                let (exclude, item) = match item.strip_prefix('!') {
                    Some(rest) => (true, rest.trim()),
                    None => (false, item),
                };
                let target = if exclude {
                    &mut excluded
                } else {
                    &mut included
                };
                Self::parse_item(item, vars, target, &mut spec.vars)?;
            }
            if included.is_empty() && excluded.is_empty() {
                return Err(format!("empty port list {token:?}"));
            }
            spec.included = normalize(included);
            spec.excluded = normalize(excluded);
            return Ok(spec);
        }
        let mut included = Vec::new();
        Self::parse_item(rest, vars, &mut included, &mut spec.vars)?;
        spec.included = normalize(included);
        Ok(spec)
    }

    /// Parses one atomic item (`N`, `N:M`, `:M`, `N:`, `$VAR`) into `out`.
    fn parse_item(
        item: &str,
        vars: &PortVars,
        out: &mut Vec<(u16, u16)>,
        seen_vars: &mut Vec<String>,
    ) -> Result<(), String> {
        if let Some(name) = item.strip_prefix('$') {
            if name.is_empty() {
                return Err("empty variable name '$'".to_string());
            }
            let lower = name.to_ascii_lowercase();
            if let Some(ranges) = vars.lookup(&lower) {
                out.extend_from_slice(ranges);
            }
            // Unknown variables contribute no ranges: the spec stays `any`
            // (or, inside a list, the other items decide) — conservative,
            // never drops a rule from a flow it might apply to.
            seen_vars.push(lower);
            return Ok(());
        }
        let parse_port = |s: &str| -> Result<u16, String> {
            s.parse::<u16>()
                .map_err(|_| format!("invalid port {s:?} (expected 0..=65535)"))
        };
        if let Some((lo, hi)) = item.split_once(':') {
            let lo = if lo.trim().is_empty() {
                0
            } else {
                parse_port(lo.trim())?
            };
            let hi = if hi.trim().is_empty() {
                u16::MAX
            } else {
                parse_port(hi.trim())?
            };
            if lo > hi {
                return Err(format!("inverted port range {item:?}"));
            }
            out.push((lo, hi));
        } else {
            let p = parse_port(item)?;
            out.push((p, p));
        }
        Ok(())
    }

    /// True if the spec matches `port` (see the type docs for semantics).
    pub fn matches(&self, port: u16) -> bool {
        let base = (self.included.is_empty() || covers(&self.included, port))
            && !covers(&self.excluded, port);
        base != self.negated
    }

    /// True if the spec matches every port (`any`, or an unknown `$VAR`).
    pub fn is_any(&self) -> bool {
        !self.negated && self.included.is_empty() && self.excluded.is_empty()
    }

    /// The explicit ports of a small, non-negated inclusion spec: the exact
    /// set of ports it matches, when that set has at most `max` members.
    /// `None` for `any`, negated specs, and specs wider than `max` — the
    /// cases the port-group partitioner sends to a catch-all group instead.
    pub fn explicit_ports(&self, max: usize) -> Option<Vec<u16>> {
        if self.negated || self.included.is_empty() {
            return None;
        }
        let mut ports = Vec::new();
        for &(lo, hi) in &self.included {
            if (hi - lo) as usize >= max {
                return None;
            }
            for p in lo..=hi {
                if !covers(&self.excluded, p) {
                    ports.push(p);
                }
                if ports.len() > max {
                    return None;
                }
            }
        }
        ports.sort_unstable();
        ports.dedup();
        Some(ports)
    }

    /// Lower-cased names of the `$VAR` references this spec contained.
    pub fn var_names(&self) -> &[String] {
        &self.vars
    }
}

/// A parsed rule header: everything to the left of the option parenthesis.
#[derive(Clone, PartialEq, Debug)]
pub struct RuleHeader {
    /// The action keyword (`alert`, `log`, ...), kept verbatim.
    pub action: String,
    /// Transport protocol the rule applies to.
    pub proto: Proto,
    /// Source port specification.
    pub src: PortSpec,
    /// Destination port specification.
    pub dst: PortSpec,
    /// `->` or `<>`.
    pub direction: Direction,
}

impl RuleHeader {
    /// A protocol-agnostic catch-all header (`alert ip any any -> any any`),
    /// the header synthetic rules without real headers get.
    pub fn any() -> Self {
        RuleHeader {
            action: "alert".to_string(),
            proto: Proto::Ip,
            src: PortSpec::any(),
            dst: PortSpec::any(),
            direction: Direction::Unidirectional,
        }
    }

    /// Convenience constructor for a unidirectional rule header.
    pub fn new(proto: Proto, src: PortSpec, dst: PortSpec) -> Self {
        RuleHeader {
            action: "alert".to_string(),
            proto,
            src,
            dst,
            direction: Direction::Unidirectional,
        }
    }

    /// **The** rule↔flow applicability test: protocol accepted, and the
    /// port specs matched in the header's orientation (or either
    /// orientation for `<>` rules). Grouped scanning reports a rule only if
    /// this holds, so group selection can over-approximate freely.
    pub fn applies_to(&self, flow: FlowTuple) -> bool {
        if !self.proto.accepts(flow.proto) {
            return false;
        }
        let forward = self.src.matches(flow.src_port) && self.dst.matches(flow.dst_port);
        match self.direction {
            Direction::Unidirectional => forward,
            Direction::Bidirectional => {
                forward || (self.src.matches(flow.dst_port) && self.dst.matches(flow.src_port))
            }
        }
    }
}

/// Parses a rule header (`action proto src_ip src_ports dir dst_ip
/// dst_ports`) with the default variable table.
pub fn parse_header(header: &str) -> Result<RuleHeader, String> {
    parse_header_with_vars(header, &PortVars::default())
}

/// Parses a rule header against an explicit variable table.
pub fn parse_header_with_vars(header: &str, vars: &PortVars) -> Result<RuleHeader, String> {
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 7 {
        return Err(format!(
            "malformed rule header (expected 'action proto src_ip src_ports direction \
             dst_ip dst_ports', got {} fields)",
            tokens.len()
        ));
    }
    let proto = Proto::parse(tokens[1]).ok_or_else(|| {
        format!(
            "unknown protocol {:?} (expected tcp|udp|icmp|ip)",
            tokens[1]
        )
    })?;
    let src = PortSpec::parse(tokens[3], vars)
        .map_err(|e| format!("bad source ports {:?}: {e}", tokens[3]))?;
    let direction = match tokens[4] {
        "->" => Direction::Unidirectional,
        "<>" => Direction::Bidirectional,
        other => return Err(format!("unknown direction operator {other:?}")),
    };
    let dst = PortSpec::parse(tokens[6], vars)
        .map_err(|e| format!("bad destination ports {:?}: {e}", tokens[6]))?;
    Ok(RuleHeader {
        action: tokens[0].to_string(),
        proto,
        src,
        dst,
        direction,
    })
}

/// Derives the [`ProtocolGroup`] of a parsed header from its protocol and
/// the ports/variables it *actually* names — the structured replacement for
/// the old substring heuristic (under which any port containing the digits
/// `80`, such as 8080 or 1808, classified as HTTP).
///
/// A port is "named" when it belongs to a small explicit port set of the
/// source or destination spec; ranges and negations never classify.
pub fn protocol_group(header: &RuleHeader) -> ProtocolGroup {
    const EXPLICIT: usize = 16;
    let mut ports: Vec<u16> = Vec::new();
    for spec in [&header.src, &header.dst] {
        if let Some(explicit) = spec.explicit_ports(EXPLICIT) {
            ports.extend(explicit);
        }
    }
    let has_var = |name: &str| {
        header
            .src
            .var_names()
            .iter()
            .chain(header.dst.var_names())
            .any(|v| v == name)
    };
    let has_port = |p: u16| ports.contains(&p);
    if has_var("http_ports") || has_port(80) {
        ProtocolGroup::Http
    } else if header.proto == Proto::Udp && (has_port(53) || has_var("dns_ports")) {
        ProtocolGroup::Dns
    } else if has_port(21) || has_var("ftp_ports") {
        ProtocolGroup::Ftp
    } else if has_port(25) || has_var("smtp_ports") {
        ProtocolGroup::Smtp
    } else if header.proto == Proto::Ip && header.src.is_any() && header.dst.is_any() {
        ProtocolGroup::Any
    } else {
        ProtocolGroup::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(token: &str) -> PortSpec {
        PortSpec::parse(token, &PortVars::default()).unwrap()
    }

    #[test]
    fn single_port_and_any() {
        let s = spec("80");
        assert!(s.matches(80));
        assert!(!s.matches(8080));
        assert!(!s.matches(800));
        assert!(!s.matches(1808));
        assert!(spec("any").matches(0));
        assert!(spec("any").matches(65535));
        assert!(spec("any").is_any());
    }

    #[test]
    fn ranges_open_and_closed() {
        let s = spec("1:1024");
        assert!(s.matches(1) && s.matches(1024) && s.matches(512));
        assert!(!s.matches(0) && !s.matches(1025));
        let low = spec(":1024");
        assert!(low.matches(0) && low.matches(1024) && !low.matches(1025));
        let high = spec("1024:");
        assert!(high.matches(1024) && high.matches(65535) && !high.matches(1023));
    }

    #[test]
    fn negation_flips_the_whole_spec() {
        let s = spec("!80");
        assert!(!s.matches(80));
        assert!(s.matches(81) && s.matches(8080));
        let list = spec("![80,443:445]");
        assert!(!list.matches(80) && !list.matches(444));
        assert!(list.matches(442) && list.matches(446));
    }

    #[test]
    fn lists_with_embedded_exclusions() {
        let s = spec("[80,8080]");
        assert!(s.matches(80) && s.matches(8080));
        assert!(!s.matches(81));
        let hole = spec("[1:100,!80]");
        assert!(hole.matches(79) && hole.matches(81) && hole.matches(1));
        assert!(!hole.matches(80) && !hole.matches(101));
    }

    #[test]
    fn http_ports_var_resolves_to_defaults() {
        let s = spec("$HTTP_PORTS");
        for p in [80u16, 8080, 8000, 8888] {
            assert!(s.matches(p), "port {p} is in the default $HTTP_PORTS");
        }
        assert!(!s.matches(25));
        assert_eq!(s.var_names(), &["http_ports".to_string()]);
    }

    #[test]
    fn unknown_vars_resolve_to_any() {
        let s = spec("$NO_SUCH_VAR");
        assert!(s.is_any());
        assert!(s.matches(80) && s.matches(12345));
        assert_eq!(s.var_names(), &["no_such_var".to_string()]);
    }

    #[test]
    fn custom_vars_override_defaults() {
        let mut vars = PortVars::default();
        vars.define("HTTP_PORTS", &[(3128, 3128)]);
        let s = PortSpec::parse("$HTTP_PORTS", &vars).unwrap();
        assert!(s.matches(3128));
        assert!(!s.matches(80));
    }

    #[test]
    fn malformed_specs_error() {
        let vars = PortVars::default();
        for bad in [
            "!any", "", "80000", "abc", "10:5", "[80", "[]", "[,]", "[[80]]", "$",
        ] {
            assert!(
                PortSpec::parse(bad, &vars).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn explicit_ports_extraction() {
        assert_eq!(spec("80").explicit_ports(16), Some(vec![80]));
        assert_eq!(spec("[80,8080]").explicit_ports(16), Some(vec![80, 8080]));
        assert_eq!(spec("[1:4,!2]").explicit_ports(16), Some(vec![1, 3, 4]));
        assert_eq!(spec("any").explicit_ports(16), None);
        assert_eq!(spec("!80").explicit_ports(16), None);
        assert_eq!(spec("1:1024").explicit_ports(16), None);
    }

    #[test]
    fn header_parsing_and_applicability() {
        let h = parse_header("alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS").unwrap();
        assert_eq!(h.proto, Proto::Tcp);
        assert_eq!(h.direction, Direction::Unidirectional);
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 49152, 80)));
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 49152, 8080)));
        assert!(!h.applies_to(FlowTuple::new(Proto::Tcp, 49152, 25)));
        assert!(!h.applies_to(FlowTuple::new(Proto::Udp, 49152, 80)));
        // Unidirectional: the ports do not apply in reverse.
        assert!(!h.applies_to(FlowTuple::new(Proto::Tcp, 80, 49152)));
    }

    #[test]
    fn bidirectional_headers_apply_both_ways() {
        let h = parse_header("alert tcp any 445 <> any any").unwrap();
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 445, 1000)));
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 1000, 445)));
        assert!(!h.applies_to(FlowTuple::new(Proto::Tcp, 1000, 1001)));
    }

    #[test]
    fn ip_rules_accept_all_protocols() {
        let h = parse_header("alert ip any any -> any any").unwrap();
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp] {
            assert!(h.applies_to(FlowTuple::new(proto, 1, 2)));
        }
    }

    #[test]
    fn malformed_headers_error() {
        assert!(parse_header("alert tcp any any ->").is_err());
        assert!(parse_header("alert xyz any any -> any 80").is_err());
        assert!(parse_header("alert tcp any any <- any 80").is_err());
        assert!(parse_header("alert tcp any 10:5 -> any 80").is_err());
        assert!(parse_header("alert tcp any any -> any !any").is_err());
    }

    #[test]
    fn classification_is_structural_not_substring() {
        let group = |h: &str| protocol_group(&parse_header(h).unwrap());
        assert_eq!(
            group("alert tcp any any -> any $HTTP_PORTS"),
            ProtocolGroup::Http
        );
        assert_eq!(group("alert tcp any any -> any 80"), ProtocolGroup::Http);
        // The old substring heuristic classified all of these as HTTP
        // because the token contained the digits "80".
        assert_eq!(group("alert tcp any any -> any 8080"), ProtocolGroup::Other);
        assert_eq!(group("alert tcp any any -> any 800"), ProtocolGroup::Other);
        assert_eq!(group("alert tcp any any -> any 1808"), ProtocolGroup::Other);
        assert_eq!(group("alert udp any any -> any 53"), ProtocolGroup::Dns);
        assert_eq!(group("alert tcp any any -> any 53"), ProtocolGroup::Other);
        assert_eq!(group("alert tcp any any -> any 25"), ProtocolGroup::Smtp);
        assert_eq!(group("alert tcp any any -> any 21"), ProtocolGroup::Ftp);
        assert_eq!(group("alert ip any any -> any any"), ProtocolGroup::Any);
        assert_eq!(group("alert tcp any any -> any 6667"), ProtocolGroup::Other);
        // Ranges do not classify: port 80 inside 1:1024 is not "about HTTP".
        assert_eq!(
            group("alert tcp any any -> any 1:1024"),
            ProtocolGroup::Other
        );
    }
}
