//! First-class multi-content Snort rules with positional constraints.
//!
//! A real Snort rule is not one pattern: it is an ordered list of `content:`
//! strings, each optionally constrained by `offset` / `depth` (absolute
//! positions in the payload) and `distance` / `within` (positions relative
//! to where the *previous* content matched). The multi-pattern matcher only
//! ever searches for one content per rule — the **anchor** — and the
//! remaining contents plus all positional constraints are checked by a
//! confirmation stage when the anchor fires (Snort's "fast pattern" design;
//! the rare-substring anchor selection follows Susik et al., "Multiple
//! pattern matching revisited").
//!
//! This module provides the rule model shared by the whole workspace:
//!
//! * [`RuleContent`] — one content string with its modifiers;
//! * [`Rule`] — an ordered, non-empty list of contents plus metadata;
//! * [`RuleSet`] — a collection of rules with the per-rule anchor selected
//!   over *set statistics* and exposed as a rule-bound [`PatternSet`]
//!   ([`RuleSet::anchors`]) ready for any engine in the workspace;
//! * [`RuleMatch`] — a confirmed rule occurrence;
//! * a naive, obviously-correct rule evaluator
//!   ([`naive_rule_find_all`] and friends) — the ground truth the
//!   differential suites compare the engine confirmation stage against.
//!
//! # Constraint semantics
//!
//! For a content of length `len` matched at `[start, end)` (`end = start +
//! len`), with `prev_end` the end of the occurrence chosen for the
//! *previous* content of the rule (`0` for the first content):
//!
//! * `offset: o` — `start >= o` (absolute; default 0);
//! * `depth: d` — `end <= o + d` (absolute, counted from `offset` as Snort
//!   does);
//! * `distance: x` — `start >= prev_end + x` (relative; may be negative);
//! * `within: w` — `end <= prev_end + w` (relative). A content carrying
//!   `within` but no `distance` still searches forward from the previous
//!   match (`start >= prev_end`), mirroring Snort's cursor.
//!
//! A rule matches a payload iff there is an **assignment** of one real
//! occurrence per content (in listed order) satisfying every constraint.
//! The reported match offset is the smallest payload prefix length at which
//! the rule becomes satisfiable — i.e. the minimal achievable maximum
//! occurrence end over all satisfying assignments. That quantity depends
//! only on the payload bytes, never on how they were chunked, which is what
//! makes streamed confirmation ≡ one-shot confirmation provable.

use crate::pattern::{Pattern, PatternSet, ProtocolGroup};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a rule inside a [`RuleSet`] (a dense index, like
/// [`crate::pattern::PatternId`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One `content:` of a rule, with its per-content modifiers.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RuleContent {
    bytes: Vec<u8>,
    nocase: bool,
    offset: u32,
    depth: Option<u32>,
    distance: Option<i32>,
    within: Option<u32>,
}

impl RuleContent {
    /// Creates an unconstrained, byte-exact content.
    ///
    /// # Panics
    /// Panics if `bytes` is empty (Snort rejects empty contents too).
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        let bytes = bytes.into();
        assert!(!bytes.is_empty(), "rule contents must be non-empty");
        RuleContent {
            bytes,
            nocase: false,
            offset: 0,
            depth: None,
            distance: None,
            within: None,
        }
    }

    /// Sets the ASCII-case-insensitivity flag (Snort `nocase;`).
    pub fn with_nocase(mut self, nocase: bool) -> Self {
        self.nocase = nocase;
        self
    }

    /// Sets the absolute `offset` modifier (`start >= offset`).
    pub fn with_offset(mut self, offset: u32) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the absolute `depth` modifier (`end <= offset + depth`).
    pub fn with_depth(mut self, depth: u32) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Sets the relative `distance` modifier (`start >= prev_end +
    /// distance`).
    pub fn with_distance(mut self, distance: i32) -> Self {
        self.distance = Some(distance);
        self
    }

    /// Sets the relative `within` modifier (`end <= prev_end + within`).
    pub fn with_within(mut self, within: u32) -> Self {
        self.within = Some(within);
        self
    }

    /// In-place setters for the parser, which discovers modifiers after the
    /// content is already in its rule's list.
    pub(crate) fn set_nocase(&mut self, nocase: bool) {
        self.nocase = nocase;
    }
    pub(crate) fn set_offset(&mut self, offset: u32) {
        self.offset = offset;
    }
    pub(crate) fn set_depth(&mut self, depth: u32) {
        self.depth = Some(depth);
    }
    pub(crate) fn set_distance(&mut self, distance: i32) {
        self.distance = Some(distance);
    }
    pub(crate) fn set_within(&mut self, within: u32) {
        self.within = Some(within);
    }

    /// The content bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Content length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always false: empty contents cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if this content matches ASCII-case-insensitively.
    #[inline]
    pub fn is_nocase(&self) -> bool {
        self.nocase
    }

    /// The `offset` modifier (0 when unset, Snort's default).
    #[inline]
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The `depth` modifier, if present.
    #[inline]
    pub fn depth(&self) -> Option<u32> {
        self.depth
    }

    /// The `distance` modifier, if present.
    #[inline]
    pub fn distance(&self) -> Option<i32> {
        self.distance
    }

    /// The `within` modifier, if present.
    #[inline]
    pub fn within(&self) -> Option<u32> {
        self.within
    }

    /// True if the content carries a relative modifier (`distance` or
    /// `within`) and therefore chains to the previous content's match.
    #[inline]
    pub fn is_relative(&self) -> bool {
        self.distance.is_some() || self.within.is_some()
    }

    /// Tests whether the content's bytes occur at `start` in `payload`,
    /// under the content's own case rule — constraints not included.
    #[inline]
    pub fn occurs_at(&self, payload: &[u8], start: usize) -> bool {
        match payload.get(start..start + self.bytes.len()) {
            Some(window) if self.nocase => window.eq_ignore_ascii_case(&self.bytes),
            Some(window) => window == &self.bytes[..],
            None => false,
        }
    }

    /// Tests the *absolute* constraints (`offset` / `depth`) for a match
    /// starting at `start`.
    #[inline]
    pub fn absolute_ok(&self, start: usize) -> bool {
        if start < self.offset as usize {
            return false;
        }
        match self.depth {
            Some(d) => start + self.bytes.len() <= self.offset as usize + d as usize,
            None => true,
        }
    }

    /// Tests the *relative* constraints (`distance` / `within`) for a match
    /// starting at `start`, given the previous content's match end.
    /// Vacuously true for non-relative contents.
    #[inline]
    pub fn relative_ok(&self, start: usize, prev_end: usize) -> bool {
        if !self.is_relative() {
            return true;
        }
        let start = start as i64;
        let prev_end = prev_end as i64;
        if start < prev_end + self.distance.unwrap_or(0) as i64 {
            return false;
        }
        match self.within {
            Some(w) => start + self.bytes.len() as i64 <= prev_end + w as i64,
            None => true,
        }
    }

    /// All constraints together: `absolute_ok && relative_ok`.
    #[inline]
    pub fn allowed(&self, start: usize, prev_end: usize) -> bool {
        self.absolute_ok(start) && self.relative_ok(start, prev_end)
    }

    /// The inclusive range of start positions worth scanning in a payload of
    /// `payload_len` bytes, per the absolute constraints alone. `None` when
    /// no occurrence can fit.
    pub fn scan_range(&self, payload_len: usize) -> Option<(usize, usize)> {
        let len = self.bytes.len();
        let lo = self.offset as usize;
        let mut hi = payload_len.checked_sub(len)?;
        if let Some(d) = self.depth {
            let window_end = (self.offset as usize + d as usize).checked_sub(len)?;
            hi = hi.min(window_end);
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// Heap bytes owned by this content.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.capacity()
    }
}

impl fmt::Display for RuleContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "content:\"")?;
        for &b in &self.bytes {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")?;
        if self.nocase {
            write!(f, " nocase")?;
        }
        if self.offset != 0 {
            write!(f, " offset:{}", self.offset)?;
        }
        if let Some(d) = self.depth {
            write!(f, " depth:{d}")?;
        }
        if let Some(x) = self.distance {
            write!(f, " distance:{x}")?;
        }
        if let Some(w) = self.within {
            write!(f, " within:{w}")?;
        }
        Ok(())
    }
}

/// A multi-content rule: an ordered, non-empty list of [`RuleContent`]s
/// plus protocol group and (optional) Snort `sid`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rule {
    group: ProtocolGroup,
    sid: Option<u32>,
    contents: Vec<RuleContent>,
    /// Index (into `contents`) of the anchor content handed to the
    /// multi-pattern matcher. Chosen by [`RuleSet::new`] over set
    /// statistics; 0 until then.
    anchor: usize,
}

impl Rule {
    /// Creates a rule from its contents, in rule order.
    ///
    /// # Panics
    /// Panics if `contents` is empty — a rule with no content has nothing
    /// for the matcher to anchor on.
    pub fn new(group: ProtocolGroup, contents: Vec<RuleContent>) -> Self {
        assert!(!contents.is_empty(), "rules must have at least one content");
        Rule {
            group,
            sid: None,
            contents,
            anchor: 0,
        }
    }

    /// Sets the Snort `sid` of this rule.
    pub fn with_sid(mut self, sid: Option<u32>) -> Self {
        self.sid = sid;
        self
    }

    /// The protocol group of this rule.
    #[inline]
    pub fn group(&self) -> ProtocolGroup {
        self.group
    }

    /// The Snort `sid`, if the rule text carried one.
    #[inline]
    pub fn sid(&self) -> Option<u32> {
        self.sid
    }

    /// The contents, in rule order.
    #[inline]
    pub fn contents(&self) -> &[RuleContent] {
        &self.contents
    }

    /// Index of the anchor content ([`RuleSet::new`] selects it).
    #[inline]
    pub fn anchor_index(&self) -> usize {
        self.anchor
    }

    /// The anchor content itself.
    #[inline]
    pub fn anchor(&self) -> &RuleContent {
        &self.contents[self.anchor]
    }

    /// Heap bytes owned by this rule.
    pub fn heap_bytes(&self) -> usize {
        self.contents.capacity() * std::mem::size_of::<RuleContent>()
            + self
                .contents
                .iter()
                .map(RuleContent::heap_bytes)
                .sum::<usize>()
    }
}

/// A confirmed rule occurrence.
///
/// `end` is the smallest stream/payload prefix length at which the rule is
/// satisfiable (see the module documentation) — a pure function of the
/// payload bytes, so one-shot and streamed confirmation agree on it. Each
/// rule is reported **at most once** per payload/stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RuleMatch {
    /// The confirmed rule.
    pub rule: RuleId,
    /// Minimal prefix length at which the rule's constraints are satisfiable.
    pub end: usize,
}

impl RuleMatch {
    /// Creates a rule match.
    pub fn new(rule: RuleId, end: usize) -> Self {
        RuleMatch { rule, end }
    }
}

impl fmt::Display for RuleMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.rule, self.end)
    }
}

/// An immutable collection of rules with per-rule anchors selected over set
/// statistics, plus the rule-bound anchor [`PatternSet`] the engines are
/// compiled for.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
    anchors: PatternSet,
}

impl RuleSet {
    /// Builds a rule set, selecting each rule's anchor content.
    ///
    /// Anchor selection (the rarest/longest heuristic): prefer contents long
    /// enough for the engines' 4-byte filters (`len >= 4`); among those,
    /// prefer the rarest case-folded 2-byte prefix counted across **all**
    /// contents of the whole set (rare prefixes keep the filter hit rate
    /// low); break ties by longest content, then by earliest position in
    /// the rule. Rules with only short contents fall back to the longest
    /// one.
    pub fn new(rules: Vec<Rule>) -> Self {
        // Set statistics: how often each case-folded 2-byte prefix occurs
        // over every content of every rule (1-byte contents count their
        // single byte).
        let mut prefix_freq: HashMap<u16, u32> = HashMap::new();
        for rule in &rules {
            for content in &rule.contents {
                *prefix_freq.entry(two_byte_prefix(content)).or_insert(0) += 1;
            }
        }
        let mut rules = rules;
        for rule in &mut rules {
            rule.anchor = select_anchor(&rule.contents, &prefix_freq);
        }
        let patterns: Vec<Pattern> = rules
            .iter()
            .map(|r| {
                let c = r.anchor();
                Pattern::new(c.bytes().to_vec(), r.group).with_nocase(c.is_nocase())
            })
            .collect();
        let bindings: Vec<u32> = (0..rules.len() as u32).collect();
        let anchors = PatternSet::new(patterns).with_rule_bindings(bindings);
        RuleSet { rules, anchors }
    }

    /// Number of rules.
    #[inline]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the set contains no rules.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule with the given id.
    #[inline]
    pub fn get(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// All rules as a slice (index == id).
    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Iterates over `(id, rule)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// The anchor pattern set the engines are compiled for: one pattern per
    /// rule (its anchor content), with [`PatternSet::rule_binding`]
    /// mapping pattern `i` back to rule `i`.
    #[inline]
    pub fn anchors(&self) -> &PatternSet {
        &self.anchors
    }

    /// Returns a new set with only the rules of `group` plus the
    /// protocol-agnostic ones, mirroring [`PatternSet::select_group`].
    /// Anchors are re-selected over the subset's statistics.
    pub fn select_group(&self, group: ProtocolGroup) -> RuleSet {
        RuleSet::new(
            self.rules
                .iter()
                .filter(|r| r.group == group || r.group == ProtocolGroup::Any)
                .cloned()
                .collect(),
        )
    }
}

/// The case-folded 2-byte prefix a content contributes to set statistics
/// (1-byte contents use their single byte).
fn two_byte_prefix(content: &RuleContent) -> u16 {
    let b = content.bytes();
    let fold = |x: u8| x.to_ascii_lowercase();
    if b.len() >= 2 {
        u16::from_le_bytes([fold(b[0]), fold(b[1])])
    } else {
        fold(b[0]) as u16
    }
}

/// Picks the anchor index per the rarest/longest heuristic (see
/// [`RuleSet::new`]).
fn select_anchor(contents: &[RuleContent], prefix_freq: &HashMap<u16, u32>) -> usize {
    let mut best = 0usize;
    let mut best_key = (false, i64::MIN, 0usize);
    for (i, c) in contents.iter().enumerate() {
        let freq = prefix_freq.get(&two_byte_prefix(c)).copied().unwrap_or(0);
        // (long enough for the 4-byte filters, rarer prefix, longer content);
        // strict `>` keeps the earliest content on full ties.
        let key = (c.len() >= 4, -(freq as i64), c.len());
        if key > best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// All occurrences of `content` in `payload` satisfying its **absolute**
/// constraints, as `(start, end)` pairs in ascending order — the naive
/// O(n·m) scan the differential suites use as ground truth.
pub fn naive_content_occurrences(content: &RuleContent, payload: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let Some((lo, hi)) = content.scan_range(payload.len()) else {
        return out;
    };
    for start in lo..=hi {
        if content.occurs_at(payload, start) {
            out.push((start, start + content.len()));
        }
    }
    out
}

/// Naive satisfiability: is there an assignment of occurrences (one per
/// content, in order) within `payload` meeting every constraint?
///
/// Plain memoized recursion over `(content index, previous match end)` —
/// deliberately different in shape from the engines' confirmation algorithm
/// so the differential suites compare two independent implementations.
pub fn naive_rule_satisfiable(rule: &Rule, payload: &[u8]) -> bool {
    let occurrences: Vec<Vec<(usize, usize)>> = rule
        .contents()
        .iter()
        .map(|c| naive_content_occurrences(c, payload))
        .collect();
    if occurrences.iter().any(Vec::is_empty) {
        return false;
    }
    let mut memo: HashMap<(usize, usize), bool> = HashMap::new();
    fn sat(
        rule: &Rule,
        occurrences: &[Vec<(usize, usize)>],
        idx: usize,
        prev_end: usize,
        memo: &mut HashMap<(usize, usize), bool>,
    ) -> bool {
        if idx == occurrences.len() {
            return true;
        }
        if let Some(&cached) = memo.get(&(idx, prev_end)) {
            return cached;
        }
        let content = &rule.contents()[idx];
        let ok = occurrences[idx].iter().any(|&(start, end)| {
            content.relative_ok(start, prev_end) && sat(rule, occurrences, idx + 1, end, memo)
        });
        memo.insert((idx, prev_end), ok);
        ok
    }
    sat(rule, &occurrences, 0, 0, &mut memo)
}

/// Naive first-satisfiable prefix length: the smallest `L` such that
/// [`naive_rule_satisfiable`] holds on `&payload[..L]`, or `None`.
///
/// Satisfiability is monotone in `L` (a longer prefix only adds candidate
/// occurrences; no constraint references the payload length) and can only
/// flip at an occurrence end, so a binary search over the sorted occurrence
/// ends finds the minimum.
pub fn naive_rule_first_end(rule: &Rule, payload: &[u8]) -> Option<usize> {
    if !naive_rule_satisfiable(rule, payload) {
        return None;
    }
    let mut ends: Vec<usize> = rule
        .contents()
        .iter()
        .flat_map(|c| naive_content_occurrences(c, payload))
        .map(|(_, end)| end)
        .collect();
    ends.sort_unstable();
    ends.dedup();
    // Invariant: satisfiable at ends[hi], not satisfiable below ends[lo].
    let (mut lo, mut hi) = (0usize, ends.len() - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if naive_rule_satisfiable(rule, &payload[..ends[mid]]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(ends[hi])
}

/// Naive rule evaluation of a whole set: one [`RuleMatch`] per satisfiable
/// rule, in rule-id order — the ground truth for `scan_rules`.
pub fn naive_rule_find_all(set: &RuleSet, payload: &[u8]) -> Vec<RuleMatch> {
    set.iter()
        .filter_map(|(id, rule)| {
            naive_rule_first_end(rule, payload).map(|end| RuleMatch::new(id, end))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternId;

    fn rule(contents: Vec<RuleContent>) -> Rule {
        Rule::new(ProtocolGroup::Any, contents)
    }

    #[test]
    fn content_constraint_semantics() {
        let c = RuleContent::new(*b"abc").with_offset(2).with_depth(5);
        // start >= 2 and end <= 2 + 5 = 7 -> start in [2, 4].
        assert!(!c.absolute_ok(1));
        assert!(c.absolute_ok(2));
        assert!(c.absolute_ok(4));
        assert!(!c.absolute_ok(5));
        assert_eq!(c.scan_range(100), Some((2, 4)));
        assert_eq!(c.scan_range(6), Some((2, 3)));
        assert_eq!(c.scan_range(4), None, "no room for the 3 bytes past offset");

        let r = RuleContent::new(*b"xy").with_distance(3).with_within(8);
        // start >= prev_end + 3, end <= prev_end + 8 -> start in [p+3, p+6].
        assert!(!r.relative_ok(12, 10));
        assert!(r.relative_ok(13, 10));
        assert!(r.relative_ok(16, 10));
        assert!(!r.relative_ok(17, 10));

        let neg = RuleContent::new(*b"xy").with_distance(-2);
        assert!(neg.relative_ok(8, 10));
        assert!(!neg.relative_ok(7, 10));

        // within-only still searches forward from the previous match.
        let w = RuleContent::new(*b"xy").with_within(4);
        assert!(w.relative_ok(10, 10));
        assert!(!w.relative_ok(9, 10));
        assert!(!w.relative_ok(13, 10));
    }

    #[test]
    fn occurs_at_honours_nocase() {
        let exact = RuleContent::new(*b"GeT");
        assert!(exact.occurs_at(b"..GeT", 2));
        assert!(!exact.occurs_at(b"..GET", 2));
        assert!(!exact.occurs_at(b"..GeT", 4), "window past end");
        let folded = RuleContent::new(*b"GeT").with_nocase(true);
        assert!(folded.occurs_at(b"..gEt", 2));
    }

    #[test]
    fn anchor_prefers_long_then_rare_then_longest() {
        // "zz..." is rare; "GET" appears in both rules (common prefix) and is
        // short anyway.
        let set = RuleSet::new(vec![
            rule(vec![
                RuleContent::new(*b"GET"),
                RuleContent::new(*b"zzz-rare-needle"),
            ]),
            rule(vec![
                RuleContent::new(*b"GET /index"),
                RuleContent::new(*b"GET /other-longer"),
            ]),
        ]);
        assert_eq!(set.get(RuleId(0)).anchor_index(), 1);
        // Both candidates of rule 1 share the folded prefix "ge" (freq 3);
        // the longer one wins.
        assert_eq!(set.get(RuleId(1)).anchor_index(), 1);
        assert_eq!(set.anchors().len(), 2);
        assert_eq!(set.anchors().get(PatternId(0)).bytes(), b"zzz-rare-needle");
    }

    #[test]
    fn anchor_falls_back_to_longest_short_content() {
        let set = RuleSet::new(vec![rule(vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"cde"),
        ])]);
        assert_eq!(set.get(RuleId(0)).anchor().bytes(), b"cde");
    }

    #[test]
    fn anchors_are_rule_bound_and_keep_nocase() {
        let set = RuleSet::new(vec![
            rule(vec![RuleContent::new(*b"aaaa")]),
            rule(vec![RuleContent::new(*b"folded-anchor").with_nocase(true)]),
        ]);
        assert!(set.anchors().is_rule_bound());
        assert_eq!(set.anchors().rule_binding(PatternId(1)), Some(RuleId(1)));
        assert!(set.anchors().get(PatternId(1)).is_nocase());
        assert!(set.anchors().has_nocase());
    }

    #[test]
    fn naive_occurrences_respect_absolute_window() {
        let c = RuleContent::new(*b"ab").with_offset(2).with_depth(4);
        // "ab" at 0, 2, 4: offset keeps >= 2, depth keeps end <= 6.
        assert_eq!(
            naive_content_occurrences(&c, b"ababab"),
            vec![(2, 4), (4, 6)]
        );
    }

    #[test]
    fn naive_satisfiability_chains_relative_contents() {
        let r = rule(vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"cd").with_distance(1).with_within(5),
        ]);
        // "ab" ends at 2; "cd" must start >= 3 and end <= 7.
        assert!(naive_rule_satisfiable(&r, b"ab.cd..."));
        assert!(
            !naive_rule_satisfiable(&r, b"abcd...."),
            "distance violated"
        );
        assert!(!naive_rule_satisfiable(&r, b"ab....cd"), "within violated");
        // A later "ab" occurrence can rescue the chain.
        assert!(naive_rule_satisfiable(&r, b"abcd.ab.cd"));
    }

    #[test]
    fn naive_first_end_is_minimal_and_chunking_independent() {
        let r = rule(vec![
            RuleContent::new(*b"ab"),
            RuleContent::new(*b"cd").with_distance(0),
        ]);
        let payload = b"ab..cd....ab.cd";
        // Earliest satisfying assignment: "ab"@0..2, "cd"@4..6 -> L = 6.
        assert_eq!(naive_rule_first_end(&r, payload), Some(6));
        // The reported end is independent of trailing bytes.
        assert_eq!(naive_rule_first_end(&r, &payload[..6]), Some(6));
        assert_eq!(naive_rule_first_end(&r, &payload[..5]), None);
    }

    #[test]
    fn naive_find_all_reports_each_rule_once_in_id_order() {
        let set = RuleSet::new(vec![
            rule(vec![RuleContent::new(*b"one")]),
            rule(vec![RuleContent::new(*b"absent")]),
            rule(vec![
                RuleContent::new(*b"one"),
                RuleContent::new(*b"two").with_distance(0),
            ]),
        ]);
        let got = naive_rule_find_all(&set, b"one two one two");
        assert_eq!(
            got,
            vec![RuleMatch::new(RuleId(0), 3), RuleMatch::new(RuleId(2), 7)]
        );
    }

    #[test]
    fn select_group_reselects_anchors() {
        let set = RuleSet::new(vec![
            Rule::new(ProtocolGroup::Http, vec![RuleContent::new(*b"http-needle")]),
            Rule::new(ProtocolGroup::Smtp, vec![RuleContent::new(*b"smtp-needle")]),
            Rule::new(ProtocolGroup::Any, vec![RuleContent::new(*b"any-needle")]),
        ]);
        let http = set.select_group(ProtocolGroup::Http);
        assert_eq!(http.len(), 2);
        assert!(http.anchors().is_rule_bound());
    }

    #[test]
    #[should_panic(expected = "at least one content")]
    fn empty_rule_rejected() {
        let _ = Rule::new(ProtocolGroup::Any, Vec::new());
    }

    #[test]
    fn display_shapes() {
        let c = RuleContent::new(*b"ab")
            .with_nocase(true)
            .with_offset(1)
            .with_depth(9)
            .with_distance(-2)
            .with_within(7);
        assert_eq!(
            format!("{c}"),
            "content:\"ab\" nocase offset:1 depth:9 distance:-2 within:7"
        );
        assert_eq!(format!("{}", RuleMatch::new(RuleId(3), 17)), "R3@17");
    }
}
