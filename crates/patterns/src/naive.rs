//! Obviously-correct reference matcher used as ground truth in tests.
//!
//! `NaiveMatcher` checks every pattern at every input position with a direct
//! comparison — byte-exact, or ASCII-case-insensitive for `nocase` patterns
//! (see [`crate::Pattern::matches_at`]). It is O(input × total pattern
//! bytes) and far too slow for the evaluation workloads, but its simplicity
//! makes it the trusted oracle against which Aho-Corasick, DFC, S-PATCH and
//! V-PATCH are all validated, including the case-insensitive semantics.

use crate::matcher::{MatchEvent, Matcher};
use crate::pattern::PatternSet;

/// Brute-force reference matcher.
#[derive(Clone, Debug)]
pub struct NaiveMatcher {
    set: PatternSet,
}

impl NaiveMatcher {
    /// Builds a naive matcher over `set`.
    pub fn new(set: &PatternSet) -> Self {
        NaiveMatcher { set: set.clone() }
    }

    /// The pattern set this matcher searches for.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }
}

impl Matcher for NaiveMatcher {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn max_pattern_len(&self) -> usize {
        self.set
            .patterns()
            .iter()
            .map(|p| p.len())
            .max()
            .unwrap_or(0)
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        for (id, pattern) in self.set.iter() {
            let len = pattern.len();
            if len > haystack.len() {
                continue;
            }
            for start in 0..=(haystack.len() - len) {
                if pattern.matches_window(&haystack[start..start + len]) {
                    out.push(MatchEvent::new(start, id));
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.set
            .patterns()
            .iter()
            .map(|p| p.len() + std::mem::size_of::<crate::pattern::Pattern>())
            .sum()
    }
}

/// Convenience free function: all matches of `set` in `haystack`, in canonical
/// order, computed naively. Shorthand used throughout the test suites.
pub fn naive_find_all(set: &PatternSet, haystack: &[u8]) -> Vec<MatchEvent> {
    NaiveMatcher::new(set).find_all(haystack)
}

/// Naive count of occurrences of a single byte string in a haystack,
/// including overlapping occurrences.
pub fn count_occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || needle.len() > haystack.len() {
        return 0;
    }
    (0..=(haystack.len() - needle.len()))
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternId;

    #[test]
    fn finds_overlapping_and_repeated_matches() {
        let set = PatternSet::from_literals(&["aa", "aaa"]);
        let matches = naive_find_all(&set, b"aaaa");
        // "aa" at 0,1,2 and "aaa" at 0,1.
        assert_eq!(matches.len(), 5);
        assert_eq!(
            matches,
            vec![
                MatchEvent::new(0, PatternId(0)),
                MatchEvent::new(0, PatternId(1)),
                MatchEvent::new(1, PatternId(0)),
                MatchEvent::new(1, PatternId(1)),
                MatchEvent::new(2, PatternId(0)),
            ]
        );
    }

    #[test]
    fn handles_patterns_longer_than_input() {
        let set = PatternSet::from_literals(&["looooooooong"]);
        assert!(naive_find_all(&set, b"short").is_empty());
    }

    #[test]
    fn single_byte_patterns() {
        let set = PatternSet::from_literals(&["a"]);
        assert_eq!(naive_find_all(&set, b"banana").len(), 3);
    }

    #[test]
    fn empty_haystack_no_matches() {
        let set = PatternSet::from_literals(&["x"]);
        assert!(naive_find_all(&set, b"").is_empty());
    }

    #[test]
    fn count_matches_default_impl_agrees() {
        let set = PatternSet::from_literals(&["an", "na"]);
        let m = NaiveMatcher::new(&set);
        assert_eq!(m.count(b"banana"), m.find_all(b"banana").len() as u64);
        assert_eq!(m.count(b"banana"), 4);
    }

    #[test]
    fn count_occurrences_overlapping() {
        assert_eq!(count_occurrences(b"aaaa", b"aa"), 3);
        assert_eq!(count_occurrences(b"abc", b""), 0);
        assert_eq!(count_occurrences(b"ab", b"abc"), 0);
    }

    #[test]
    fn nocase_patterns_match_all_case_variants() {
        use crate::pattern::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"get"),
            Pattern::literal(*b"get"),
        ]);
        let m = naive_find_all(&set, b"get GET GeT");
        // The nocase pattern hits all three variants; the exact one only the
        // first.
        let nocase_hits = m.iter().filter(|e| e.pattern == PatternId(0)).count();
        let exact_hits = m.iter().filter(|e| e.pattern == PatternId(1)).count();
        assert_eq!(nocase_hits, 3);
        assert_eq!(exact_hits, 1);
    }

    #[test]
    fn binary_patterns_match_exactly() {
        let set = PatternSet::from_literals(&[&[0x00u8, 0xff, 0x00][..]]);
        let hay = [0x01, 0x00, 0xff, 0x00, 0x00, 0xff, 0x00];
        let m = naive_find_all(&set, &hay);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].start, 1);
        assert_eq!(m[1].start, 4);
    }
}
