//! The common [`Matcher`] interface implemented by every engine in the
//! workspace, and the [`MatchEvent`] type they report.
//!
//! The paper's correctness criterion is that every engine "produces the same
//! output as Aho-Corasick": the full set of `(pattern, position)` occurrences
//! — where an occurrence is byte-exact for ordinary patterns and
//! ASCII-case-insensitive for `nocase` ones (see
//! [`crate::Pattern::matches_at`]). Encoding that interface once lets the
//! test suite compare engines byte-for-byte and lets the benchmark harness
//! drive them uniformly.

use crate::pattern::{PatternId, PatternSet};
use serde::{Deserialize, Serialize};

/// A single reported occurrence of a pattern in the input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Byte offset in the input where the pattern starts.
    pub start: usize,
    /// The pattern that matched.
    pub pattern: PatternId,
}

impl MatchEvent {
    /// Creates a match event.
    #[inline]
    pub fn new(start: usize, pattern: PatternId) -> Self {
        MatchEvent { start, pattern }
    }

    /// End offset (exclusive) of the match in the input, given the set the
    /// pattern belongs to.
    #[inline]
    pub fn end(&self, set: &PatternSet) -> usize {
        self.start + set.get(self.pattern).len()
    }
}

/// Per-scan statistics that engines may expose.
///
/// Only the fields an engine actually tracks are non-zero; they are used by
/// Figure 5b (filtering-time ratio, useful-lane occupancy) and by the cache
/// ablation experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatcherStats {
    /// Input bytes processed.
    pub bytes_scanned: u64,
    /// Windows (input positions) that passed the filtering phase and were
    /// forwarded to verification.
    pub candidates: u64,
    /// Matches confirmed by verification.
    pub matches: u64,
    /// Nanoseconds spent in the filtering phase (engines with a separate
    /// filtering round).
    pub filter_nanos: u64,
    /// Nanoseconds spent in the verification phase.
    pub verify_nanos: u64,
    /// For vectorized engines: number of vector blocks in which the third
    /// filter was evaluated.
    pub filter3_blocks: u64,
    /// For vectorized engines: total useful (active) lanes over all third
    /// filter evaluations. `useful_lanes / (filter3_blocks * W)` is the
    /// "useful elements in vector register" metric of Figure 5b.
    pub useful_lanes: u64,
}

impl MatcherStats {
    /// Fraction of total measured time spent in filtering, in `[0, 1]`.
    /// Returns `None` if the engine did not record phase timings.
    pub fn filtering_time_fraction(&self) -> Option<f64> {
        let total = self.filter_nanos + self.verify_nanos;
        if total == 0 {
            None
        } else {
            Some(self.filter_nanos as f64 / total as f64)
        }
    }

    /// Average fraction of useful lanes per third-filter evaluation, given
    /// the vector width used. Returns `None` for scalar engines.
    pub fn useful_lane_fraction(&self, lanes: usize) -> Option<f64> {
        if self.filter3_blocks == 0 || lanes == 0 {
            None
        } else {
            Some(self.useful_lanes as f64 / (self.filter3_blocks * lanes as u64) as f64)
        }
    }

    /// Merges another stats record into this one (used when scanning an input
    /// in chunks).
    pub fn merge(&mut self, other: &MatcherStats) {
        self.bytes_scanned += other.bytes_scanned;
        self.candidates += other.candidates;
        self.matches += other.matches;
        self.filter_nanos += other.filter_nanos;
        self.verify_nanos += other.verify_nanos;
        self.filter3_blocks += other.filter3_blocks;
        self.useful_lanes += other.useful_lanes;
    }
}

/// Phase-attributed breakdown of an engine's resident data structures, in
/// bytes. Complements [`Matcher::heap_bytes`] with the split the paper's
/// cache-locality argument is about: the *filtering* structures must stay
/// cache-resident while the *verification* tables may spill to L3 — so a
/// perf snapshot without the split cannot tell whether an engine is fast
/// because its algorithm is good or because its tables happen to be tiny.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes of the filtering structures the scan loop touches per input
    /// position (direct/hashed bitmap filters, shift tables).
    pub filter_bytes: usize,
    /// Bytes of the verification structures (compact hash tables, candidate
    /// buckets, pattern arenas).
    pub verify_bytes: usize,
    /// Bytes not attributable to either phase (e.g. an automaton that
    /// filters and verifies in one structure).
    pub other_bytes: usize,
}

impl MemoryFootprint {
    /// Total resident bytes; equals [`Matcher::heap_bytes`] for every engine
    /// in the workspace (asserted in the engines' tests).
    pub fn total(&self) -> usize {
        self.filter_bytes + self.verify_bytes + self.other_bytes
    }
}

/// The interface every multiple-pattern-matching engine implements.
///
/// Engines are constructed from a [`PatternSet`] (a potentially expensive,
/// one-time compilation step — building the automaton, the filters and the
/// hash tables) and then scan arbitrarily many inputs.
pub trait Matcher {
    /// Human-readable engine name, as used in the paper's figures
    /// (e.g. `"Aho-Corasick"`, `"DFC"`, `"V-PATCH"`).
    fn name(&self) -> &'static str;

    /// Length in bytes of the longest pattern this engine was compiled for
    /// (`0` for an empty pattern set).
    ///
    /// Streaming callers need this to size the chunk overlap: a scanner that
    /// processes a stream in chunks must carry over the last
    /// `max_pattern_len - 1` bytes of the previous chunk, otherwise matches
    /// straddling a chunk boundary are lost (see `mpm-stream`).
    fn max_pattern_len(&self) -> usize;

    /// Scans `haystack` and appends every occurrence of every pattern to
    /// `out`. Occurrences may be appended in any order; callers that need a
    /// canonical order sort the vector (see [`normalize_matches`]).
    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>);

    /// Scans `haystack` and returns all matches in canonical
    /// (position, pattern) order.
    fn find_all(&self, haystack: &[u8]) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        self.find_into(haystack, &mut out);
        normalize_matches(&mut out);
        out
    }

    /// Counts the occurrences in `haystack` without materialising them.
    ///
    /// The default implementation goes through [`Matcher::find_into`]; engines
    /// override it with a cheaper counting path where it matters (this is the
    /// operation the paper's throughput experiments perform: "all algorithms
    /// count the number of matches").
    fn count(&self, haystack: &[u8]) -> u64 {
        let mut out = Vec::new();
        self.find_into(haystack, &mut out);
        out.len() as u64
    }

    /// Scans `haystack`, returning per-scan statistics. Engines without
    /// instrumentation return a record with only `bytes_scanned` and
    /// `matches` filled in.
    fn scan_with_stats(&self, haystack: &[u8]) -> MatcherStats {
        let matches = self.count(haystack);
        MatcherStats {
            bytes_scanned: haystack.len() as u64,
            matches,
            ..MatcherStats::default()
        }
    }

    /// Approximate resident size, in bytes, of the engine's data structures.
    ///
    /// Used to reproduce the paper's discussion of why Aho-Corasick's
    /// automaton exceeds cache capacity while the filters stay cache-resident.
    fn heap_bytes(&self) -> usize {
        0
    }

    /// Phase-attributed breakdown of [`Matcher::heap_bytes`]. Engines with a
    /// filter/verify split override this; the default attributes everything
    /// to [`MemoryFootprint::other_bytes`]. The `bench_baseline` snapshot
    /// emits one row per engine from this, so every perf trajectory entry
    /// carries its memory cost.
    fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            filter_bytes: 0,
            verify_bytes: 0,
            other_bytes: self.heap_bytes(),
        }
    }
}

/// Asserts the memory-accounting honesty contract for one engine: the
/// phase-attributed [`Matcher::memory_footprint`] must sum to exactly
/// [`Matcher::heap_bytes`] — an engine whose footprint drifts from its real
/// resident bytes (e.g. after a table refactor moves an arena without
/// updating the accounting) silently corrupts every memory row the
/// benchmark emits and every CI budget built on it. Engine test suites call
/// this on every constructed matcher.
///
/// # Panics
/// Panics with a labelled breakdown when the totals disagree.
pub fn assert_footprint_consistent(engine: &dyn Matcher) {
    let footprint = engine.memory_footprint();
    assert_eq!(
        footprint.total(),
        engine.heap_bytes(),
        "{}: memory_footprint (filter {} + verify {} + other {}) must equal heap_bytes {}",
        engine.name(),
        footprint.filter_bytes,
        footprint.verify_bytes,
        footprint.other_bytes,
        engine.heap_bytes(),
    );
}

/// Sorts matches into the canonical order and removes duplicates.
///
/// Engines must never report the same `(pattern, start)` twice; deduplication
/// here is a safety net so the equivalence tests detect genuine differences
/// rather than harmless double-reporting, which is separately asserted.
pub fn normalize_matches(matches: &mut Vec<MatchEvent>) {
    matches.sort_unstable();
    matches.dedup();
}

/// Compares two engines' outputs on the same input, returning the differences
/// (`only_left`, `only_right`). Used extensively by the integration tests.
pub fn diff_matches(
    left: &[MatchEvent],
    right: &[MatchEvent],
) -> (Vec<MatchEvent>, Vec<MatchEvent>) {
    use std::collections::BTreeSet;
    let l: BTreeSet<_> = left.iter().copied().collect();
    let r: BTreeSet<_> = right.iter().copied().collect();
    (
        l.difference(&r).copied().collect(),
        r.difference(&l).copied().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;

    #[test]
    fn match_event_end_uses_pattern_length() {
        let set = PatternSet::from_literals(&["abc", "de"]);
        let m = MatchEvent::new(10, PatternId(0));
        assert_eq!(m.end(&set), 13);
        let m2 = MatchEvent::new(4, PatternId(1));
        assert_eq!(m2.end(&set), 6);
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = vec![
            MatchEvent::new(5, PatternId(1)),
            MatchEvent::new(2, PatternId(0)),
            MatchEvent::new(5, PatternId(1)),
            MatchEvent::new(2, PatternId(3)),
        ];
        normalize_matches(&mut v);
        assert_eq!(
            v,
            vec![
                MatchEvent::new(2, PatternId(0)),
                MatchEvent::new(2, PatternId(3)),
                MatchEvent::new(5, PatternId(1)),
            ]
        );
    }

    #[test]
    fn diff_matches_reports_both_sides() {
        let a = vec![
            MatchEvent::new(1, PatternId(0)),
            MatchEvent::new(2, PatternId(1)),
        ];
        let b = vec![
            MatchEvent::new(2, PatternId(1)),
            MatchEvent::new(3, PatternId(2)),
        ];
        let (only_a, only_b) = diff_matches(&a, &b);
        assert_eq!(only_a, vec![MatchEvent::new(1, PatternId(0))]);
        assert_eq!(only_b, vec![MatchEvent::new(3, PatternId(2))]);
    }

    #[test]
    fn stats_fractions() {
        let s = MatcherStats {
            filter_nanos: 750,
            verify_nanos: 250,
            filter3_blocks: 10,
            useful_lanes: 40,
            ..MatcherStats::default()
        };
        assert!((s.filtering_time_fraction().unwrap() - 0.75).abs() < 1e-9);
        assert!((s.useful_lane_fraction(8).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(MatcherStats::default().filtering_time_fraction(), None);
        assert_eq!(MatcherStats::default().useful_lane_fraction(8), None);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MatcherStats {
            bytes_scanned: 10,
            candidates: 1,
            matches: 2,
            filter_nanos: 5,
            verify_nanos: 6,
            filter3_blocks: 7,
            useful_lanes: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.bytes_scanned, 20);
        assert_eq!(a.useful_lanes, 16);
        assert_eq!(a.matches, 4);
    }
}
