//! [`PatternArena`]: one deduplicated, shared byte store for every pattern
//! of every port group.
//!
//! The naive encoding of port-group scanning — one verification table per
//! group, each owning a private copy of its pattern bytes — multiplies
//! pattern storage by the number of groups a pattern appears in, and real
//! rulesets repeat the same `content:` strings across many rules and
//! groups. The arena removes that multiplier the way Bellekens et al.'s
//! GPU memory-compression scheme does for trie storage: all pattern bytes
//! live once in a single immutable buffer, deduplicated by exact content,
//! and every table entry references them as `(offset, len)` instead of
//! owning a `Vec<u8>`.
//!
//! Build protocol (two passes, enforced by the type split):
//!
//! 1. [`ArenaBuilder::intern`] every pattern byte string that any table
//!    will reference — duplicate strings return the same offset;
//! 2. [`ArenaBuilder::finish`] freezes the bytes into an `Arc<[u8]>`-backed
//!    [`PatternArena`]; table builders then resolve each pattern through
//!    [`PatternArena::offset_of`] and keep a clone of the shared buffer.
//!
//! Ownership / accounting contract (see DEVELOPMENT.md "Port groups &
//! shared arenas"): the arena's bytes are immutable and reference-counted;
//! tables holding a shared arena report **zero** arena bytes in their own
//! `heap_bytes`, and the *owner* of the group collection counts
//! [`PatternArena::len`] exactly once. The intern index lives only in the
//! builder/arena used at compile time and is dropped with it — resident
//! cost after building is the byte buffer alone.

use std::collections::HashMap;
use std::sync::Arc;

/// Accumulates deduplicated pattern bytes; see the module docs.
#[derive(Debug, Default)]
pub struct ArenaBuilder {
    bytes: Vec<u8>,
    offsets: HashMap<Vec<u8>, u32>,
}

impl ArenaBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ArenaBuilder::default()
    }

    /// Interns one byte string, returning its arena offset. Identical
    /// strings (byte-exact — `nocase` patterns store their original bytes,
    /// comparison semantics live in the table entry) intern once.
    ///
    /// # Panics
    /// Panics if the arena would exceed `u32::MAX` bytes (table entries
    /// store 32-bit offsets).
    pub fn intern(&mut self, pattern: &[u8]) -> u32 {
        if let Some(&offset) = self.offsets.get(pattern) {
            return offset;
        }
        let offset = u32::try_from(self.bytes.len()).expect("pattern arena exceeds u32 offsets");
        let end = self.bytes.len() + pattern.len();
        assert!(
            u32::try_from(end).is_ok(),
            "pattern arena exceeds u32 offsets"
        );
        self.bytes.extend_from_slice(pattern);
        self.offsets.insert(pattern.to_vec(), offset);
        offset
    }

    /// Freezes the builder into an immutable, shareable arena.
    pub fn finish(self) -> PatternArena {
        PatternArena {
            bytes: Arc::from(self.bytes.into_boxed_slice()),
            offsets: self.offsets,
        }
    }
}

/// The frozen arena: an immutable shared byte buffer plus the intern index
/// used while tables are being built. Keep it only for the duration of the
/// build — afterwards hold the [`PatternArena::bytes`] `Arc` alone, so the
/// resident cost is the deduplicated bytes and nothing else.
#[derive(Clone, Debug)]
pub struct PatternArena {
    bytes: Arc<[u8]>,
    offsets: HashMap<Vec<u8>, u32>,
}

impl PatternArena {
    /// The shared byte buffer (what verification tables keep a clone of).
    pub fn bytes(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// Total deduplicated bytes — what the owner of a group collection
    /// counts once in its memory accounting.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The offset of an interned byte string, or `None` if it was never
    /// interned. Table builders treat `None` as a build-order bug: every
    /// pattern must be interned before any table is built.
    pub fn offset_of(&self, pattern: &[u8]) -> Option<u32> {
        self.offsets.get(pattern).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_exact_bytes() {
        let mut b = ArenaBuilder::new();
        let a1 = b.intern(b"attack");
        let a2 = b.intern(b"GET /");
        let a3 = b.intern(b"attack");
        assert_eq!(a1, a3, "identical strings share one offset");
        assert_ne!(a1, a2);
        let arena = b.finish();
        assert_eq!(arena.len(), "attack".len() + "GET /".len());
        assert_eq!(&arena.bytes()[a1 as usize..a1 as usize + 6], b"attack");
        assert_eq!(arena.offset_of(b"attack"), Some(a1));
        assert_eq!(arena.offset_of(b"GET /"), Some(a2));
        assert_eq!(arena.offset_of(b"missing"), None);
    }

    #[test]
    fn shared_buffer_is_reference_counted_not_copied() {
        let mut b = ArenaBuilder::new();
        b.intern(b"shared-bytes");
        let arena = b.finish();
        let first = arena.bytes().clone();
        let second = arena.bytes().clone();
        assert!(Arc::ptr_eq(&first, &second));
    }
}
