//! Deterministic synthetic rulesets reproducing the structure of the
//! paper's pattern sets.
//!
//! The paper uses two rulesets it cannot redistribute:
//!
//! * **S1** — the Snort v2.9.7 distribution ruleset, ~2,500 patterns of which
//!   ~2,000 are HTTP-related;
//! * **S2** — the ET-open 2.9.0 ruleset, ~20,000 patterns of which ~9,000 are
//!   HTTP-related.
//!
//! What the matching engines are sensitive to is the *structure* of those
//! sets, not the exact byte strings: the number of patterns, the length
//! distribution (the paper reports 21% of Snort's patterns are 1–4 bytes
//! long), how many distinct two-byte prefixes exist (this controls the direct
//! filter density and therefore the filtering rate), and how often pattern
//! prefixes collide with common protocol keywords that appear in benign
//! traffic (this is what makes real traffic much harder than random data).
//!
//! The generators below synthesise sets with those properties from a fixed
//! vocabulary of HTTP/attack tokens plus controlled random filler, seeded
//! deterministically so that every run of the benchmarks sees the same set.

use crate::pattern::{Pattern, PatternSet, ProtocolGroup};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// HTTP / web-attack vocabulary used to give synthetic patterns realistic
/// prefixes (so that, as in real rulesets, many patterns begin with byte
/// pairs that are frequent in benign HTTP traffic).
const HTTP_TOKENS: &[&str] = &[
    "GET ",
    "POST ",
    "HEAD ",
    "PUT ",
    "OPTIONS ",
    "TRACE ",
    "CONNECT ",
    "HTTP/1.1",
    "HTTP/1.0",
    "Host: ",
    "User-Agent: ",
    "Content-Type: ",
    "Content-Length: ",
    "Cookie: ",
    "Set-Cookie: ",
    "Referer: ",
    "Accept-Encoding: ",
    "X-Forwarded-For: ",
    "Authorization: Basic ",
    "/cgi-bin/",
    "/admin/",
    "/wp-login.php",
    "/phpmyadmin/",
    "/etc/passwd",
    "/bin/sh",
    "cmd.exe",
    "powershell",
    "/index.php?id=",
    "select%20",
    "union+select",
    "or+1=1",
    "../..",
    "%2e%2e%2f",
    "<script>",
    "</script>",
    "javascript:",
    "onerror=",
    "eval(",
    "base64_decode",
    "document.cookie",
    "xp_cmdshell",
    "wget+http",
    "curl+http",
    ".php?",
    ".asp?",
    ".jsp?",
    "Mozilla/4.0",
    "Mozilla/5.0",
    "MSIE 6.0",
    "sqlmap",
    "nikto",
    "nessus",
    "masscan",
    "zgrab",
    "shellshock",
    "() { :;};",
    "Range: bytes=",
    "Transfer-Encoding: chunked",
    "multipart/form-data",
    "boundary=",
    "application/x-www-form-urlencoded",
    "Proxy-Connection: ",
];

/// Tokens used for non-HTTP (DNS/FTP/SMTP/other) pattern heads.
const OTHER_TOKENS: &[&str] = &[
    "USER ",
    "PASS ",
    "RETR ",
    "STOR ",
    "SITE EXEC",
    "MAIL FROM:",
    "RCPT TO:",
    "EHLO ",
    "HELO ",
    "AUTH LOGIN",
    "VRFY ",
    "EXPN ",
    "\\x90\\x90",
    "MZ",
    "PK\x03\x04",
    "SMB",
    "\\\\PIPE\\\\",
    "ADMIN$",
    "IPC$",
    "ncacn_np",
    "DCC SEND",
    "PRIVMSG ",
    "NICK ",
    "JOIN #",
];

/// Specification for a synthetic ruleset. The presets
/// [`RulesetSpec::snort_s1`] and [`RulesetSpec::et_open_s2`] reproduce the
/// paper's two sets; custom specs are useful for the scaling sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RulesetSpec {
    /// Total number of patterns in the full set.
    pub total_patterns: usize,
    /// Fraction of patterns placed in the HTTP group.
    pub http_fraction: f64,
    /// Fraction of patterns that are short (1–3 bytes) — the paper reports
    /// 21% of Snort patterns are 1–4 bytes; with a 4-byte boundary between
    /// filter classes we keep the short class slightly smaller.
    pub short_fraction: f64,
    /// RNG seed; the same spec + seed always generates the same set.
    pub seed: u64,
}

impl RulesetSpec {
    /// Preset matching the Snort v2.9.7 ruleset "S1" (~2,500 patterns,
    /// ~2,000 of them web-related).
    pub fn snort_s1() -> Self {
        RulesetSpec {
            total_patterns: 2_500,
            http_fraction: 0.80,
            short_fraction: 0.06,
            seed: 0x51_2017,
        }
    }

    /// Preset matching the ET-open 2.9.0 ruleset "S2" (~20,000 patterns,
    /// ~9,000 of them web-related).
    pub fn et_open_s2() -> Self {
        RulesetSpec {
            total_patterns: 20_000,
            http_fraction: 0.45,
            short_fraction: 0.04,
            seed: 0x52_2017,
        }
    }

    /// A small spec for unit tests and doc examples.
    pub fn tiny(total: usize, seed: u64) -> Self {
        RulesetSpec {
            total_patterns: total,
            http_fraction: 0.7,
            short_fraction: 0.2,
            seed,
        }
    }
}

/// A generated ruleset: the full pattern set plus convenience accessors for
/// the protocol selections the paper's experiments use.
#[derive(Clone, Debug)]
pub struct SyntheticRuleset {
    spec: RulesetSpec,
    full: PatternSet,
}

impl SyntheticRuleset {
    /// Generates the ruleset described by `spec`.
    pub fn generate(spec: RulesetSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(spec.total_patterns * 2);
        let mut patterns = Vec::with_capacity(spec.total_patterns);

        let n_http = (spec.total_patterns as f64 * spec.http_fraction).round() as usize;
        while patterns.len() < spec.total_patterns {
            let is_http = patterns.len() < n_http;
            let group = if is_http {
                ProtocolGroup::Http
            } else {
                // Spread the remainder over the other groups.
                match rng.gen_range(0..10) {
                    0..=1 => ProtocolGroup::Dns,
                    2..=3 => ProtocolGroup::Ftp,
                    4..=5 => ProtocolGroup::Smtp,
                    6 => ProtocolGroup::Any,
                    _ => ProtocolGroup::Other,
                }
            };
            let bytes = generate_pattern_bytes(&mut rng, spec, is_http);
            // Keep patterns distinct: duplicates would only inflate the match
            // counts without changing engine behaviour, and real rulesets are
            // overwhelmingly distinct strings.
            if seen.insert(bytes.clone()) {
                patterns.push(Pattern::new(bytes, group));
            }
        }
        SyntheticRuleset {
            spec,
            full: PatternSet::new(patterns),
        }
    }

    /// Generates the S1 (Snort-like) ruleset.
    pub fn snort_like_s1() -> Self {
        Self::generate(RulesetSpec::snort_s1())
    }

    /// Generates the S2 (ET-open-like) ruleset.
    pub fn et_open_like_s2() -> Self {
        Self::generate(RulesetSpec::et_open_s2())
    }

    /// The specification this ruleset was generated from.
    pub fn spec(&self) -> RulesetSpec {
        self.spec
    }

    /// The full pattern set (all protocol groups).
    pub fn full(&self) -> &PatternSet {
        &self.full
    }

    /// The HTTP selection (HTTP-group patterns plus protocol-agnostic ones),
    /// which is what the paper matches against its HTTP-dominated traces.
    pub fn http(&self) -> PatternSet {
        self.full.select_group(ProtocolGroup::Http)
    }
}

/// Generates the bytes of one synthetic pattern.
fn generate_pattern_bytes(rng: &mut StdRng, spec: RulesetSpec, http: bool) -> Vec<u8> {
    let tokens = if http { HTTP_TOKENS } else { OTHER_TOKENS };
    let roll: f64 = rng.gen();
    if roll < spec.short_fraction {
        // Short pattern, 2–3 bytes. Real rulesets keep these rare and mostly
        // uncommon byte sequences ("MZ", "|90 90|", protocol opcodes): a
        // short content that appears in every benign request would render the
        // rule useless. Only a small minority are prefixes of common protocol
        // keywords ("GET"), which is what makes the short-pattern filter of
        // S-PATCH fire regularly on real traffic without flooding it.
        let len = if rng.gen_bool(0.15) { 2usize } else { 3 };
        if rng.gen_bool(0.08) {
            let tok = tokens.choose(rng).unwrap().as_bytes();
            let len = len.min(tok.len());
            tok[..len].to_vec()
        } else if rng.gen_bool(0.5) {
            const RARE: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_#@!$^~";
            (0..len)
                .map(|_| RARE[rng.gen_range(0..RARE.len())])
                .collect()
        } else {
            (0..len).map(|_| rng.gen::<u8>()).collect()
        }
    } else {
        // Long pattern: token head (often) + filler tail. Length distribution
        // is a truncated geometric-ish mix: bulk in 5–30 bytes with a tail up
        // to ~250 bytes, mirroring the published CDFs for Snort contents.
        let tail_len = if rng.gen_bool(0.9) {
            rng.gen_range(2..28usize)
        } else {
            rng.gen_range(28..250usize)
        };
        let mut bytes = Vec::with_capacity(tail_len + 16);
        if rng.gen_bool(0.45) {
            bytes.extend_from_slice(tokens.choose(rng).unwrap().as_bytes());
        }
        // Filler: printable URI-ish characters most of the time, raw bytes
        // otherwise (binary shellcode-like patterns).
        let binary = rng.gen_bool(0.15);
        for _ in 0..tail_len {
            let b = if binary {
                rng.gen::<u8>()
            } else {
                const URI: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._~/?=&%+";
                URI[rng.gen_range(0..URI.len())]
            };
            bytes.push(b);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticRuleset::generate(RulesetSpec::tiny(200, 7));
        let b = SyntheticRuleset::generate(RulesetSpec::tiny(200, 7));
        assert_eq!(a.full(), b.full());
        let c = SyntheticRuleset::generate(RulesetSpec::tiny(200, 8));
        assert_ne!(a.full(), c.full());
    }

    #[test]
    fn s1_spec_matches_paper_scale() {
        let rs = SyntheticRuleset::generate(RulesetSpec {
            total_patterns: 2_500,
            ..RulesetSpec::snort_s1()
        });
        assert_eq!(rs.full().len(), 2_500);
        let http = rs.http();
        // Paper: "the HTTP-related patterns of each set gives us 2K patterns
        // from pattern set S1".
        assert!(
            (1_800..=2_300).contains(&http.len()),
            "S1 HTTP selection should be ~2K, got {}",
            http.len()
        );
    }

    #[test]
    fn patterns_are_distinct_and_non_empty() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(500, 3));
        let mut seen = std::collections::HashSet::new();
        for (_, p) in rs.full().iter() {
            assert!(!p.bytes().is_empty());
            assert!(
                seen.insert(p.bytes().to_vec()),
                "duplicate pattern generated"
            );
        }
    }

    #[test]
    fn short_fraction_is_respected_roughly() {
        let spec = RulesetSpec {
            total_patterns: 2_000,
            http_fraction: 0.8,
            short_fraction: 0.2,
            seed: 11,
        };
        let rs = SyntheticRuleset::generate(spec);
        let summary = rs.full().summary();
        let frac = summary.short_count as f64 / summary.count as f64;
        assert!(
            (0.10..=0.30).contains(&frac),
            "short fraction {frac} out of expected band"
        );
    }

    #[test]
    fn length_distribution_has_a_long_tail() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(2_000, 5));
        let summary = rs.full().summary();
        assert!(summary.min_len >= 1);
        assert!(summary.max_len > 60, "expected some long patterns");
        assert!(summary.mean_len > 5.0 && summary.mean_len < 60.0);
    }

    #[test]
    fn http_selection_contains_http_heads() {
        let rs = SyntheticRuleset::snort_like_s1();
        let http = rs.http();
        let with_get = http
            .iter()
            .filter(|(_, p)| p.bytes().starts_with(b"GET") || p.bytes().starts_with(b"POST"))
            .count();
        assert!(
            with_get > 0,
            "HTTP selection should contain method-prefixed patterns"
        );
    }
}
