//! [`GroupedRuleSet`]: port/protocol partitioning of a ruleset, so a flow
//! is scanned against only the rules that can match it.
//!
//! Real Snort deployments carry tens of thousands of rules, but any given
//! flow only needs the few hundred whose headers name its protocol and
//! ports — Snort itself builds per-port rule groups for exactly this
//! reason, and keeping per-group pattern sets small is also what keeps the
//! filtering engines selective (Susik et al., "Multiple pattern matching
//! revisited"). This module partitions `(header, rule)` pairs (from
//! [`crate::snort::parse_grouped`]) into groups keyed by destination port,
//! source port, protocol, or the `any` catch-all:
//!
//! * a rule whose **destination** port spec is a small explicit set gets
//!   one [`GroupKey::Dst`] entry per port (`<>` rules additionally get the
//!   matching [`GroupKey::Src`] entries, so either orientation finds them);
//! * otherwise, a small explicit **source** set places it under
//!   [`GroupKey::Src`] the same way;
//! * otherwise it lands in its protocol's catch-all ([`GroupKey::Proto`]),
//!   and `ip` rules land in the global [`GroupKey::Any`] group.
//!
//! [`GroupedRuleSet::groups_for`] then selects, for a flow, its
//! destination-port group, source-port group, protocol catch-all and the
//! `any` group — **group selection over-approximates**: every selected
//! group a rule must be found in, it is in, but a selected group may hold
//! rules that do not apply to the flow (catch-alls, the other port's
//! rules). Scanners therefore re-check [`GroupedRuleSet::applies_to`]
//! before reporting, which makes grouped scanning *exactly* equivalent to
//! scanning the monolithic set and filtering matches to the flow's
//! applicable rules post-hoc (property-tested in
//! `tests/grouped_differential.rs`).
//!
//! A rule may be a member of several groups; global rule identity lives in
//! [`GroupedRuleSet::monolithic`] order, and each [`RuleGroup`] maps its
//! local ids back through [`RuleGroup::global_id`].

use crate::arena::{ArenaBuilder, PatternArena};
use crate::ports::{Direction, FlowTuple, Proto, RuleHeader};
use crate::rule::{Rule, RuleId, RuleSet};
use std::collections::BTreeMap;
use std::fmt;

/// Largest explicit port set a spec may expand to and still get per-port
/// groups; wider specs go to the catch-all. Snort's own port-group
/// compiler uses a similar cutoff to bound group fan-out.
pub const MAX_GROUP_PORTS: usize = 16;

/// Identity of one port group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GroupKey {
    /// Rules whose destination port spec names this port explicitly.
    Dst(Proto, u16),
    /// Rules whose source port spec names this port explicitly (and the
    /// mirrored entries of bidirectional rules).
    Src(Proto, u16),
    /// Per-protocol catch-all: rules of this protocol with `any`, negated
    /// or wide port specs.
    Proto(Proto),
    /// The global catch-all: `ip` rules, merged into every lookup.
    Any,
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::Dst(proto, port) => write!(f, "{proto}/dst:{port}"),
            GroupKey::Src(proto, port) => write!(f, "{proto}/src:{port}"),
            GroupKey::Proto(proto) => write!(f, "{proto}/any"),
            GroupKey::Any => f.write_str("any"),
        }
    }
}

/// One port group: a local [`RuleSet`] (with its own dense rule ids and
/// anchor pattern set, ready to compile one matcher for) plus the mapping
/// back to global rule ids.
#[derive(Clone, Debug)]
pub struct RuleGroup {
    key: GroupKey,
    set: RuleSet,
    global_ids: Vec<u32>,
}

impl RuleGroup {
    /// The group's key.
    pub fn key(&self) -> GroupKey {
        self.key
    }

    /// The group-local rule set (compile its
    /// [`RuleSet::anchors`] into the group's matcher).
    pub fn rules(&self) -> &RuleSet {
        &self.set
    }

    /// Maps a group-local rule id to the global (monolithic) rule id.
    pub fn global_id(&self, local: RuleId) -> RuleId {
        RuleId(self.global_ids[local.index()])
    }

    /// The full local→global id mapping.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }
}

/// A ruleset partitioned into port groups; see the module docs.
#[derive(Clone, Debug)]
pub struct GroupedRuleSet {
    groups: Vec<RuleGroup>,
    index: BTreeMap<GroupKey, usize>,
    headers: Vec<RuleHeader>,
    monolithic: RuleSet,
}

impl GroupedRuleSet {
    /// Partitions `(header, rule)` pairs into port groups. Global rule ids
    /// are the input order (== [`GroupedRuleSet::monolithic`] ids).
    pub fn new(rules: Vec<(RuleHeader, Rule)>) -> Self {
        let mut buckets: BTreeMap<GroupKey, Vec<u32>> = BTreeMap::new();
        for (gid, (header, _)) in rules.iter().enumerate() {
            for key in Self::keys_for(header) {
                let members = buckets.entry(key).or_default();
                // A bidirectional rule can produce the same key twice
                // (e.g. `<>` with port 445 on both sides); one membership
                // per group is enough.
                if members.last() != Some(&(gid as u32)) {
                    members.push(gid as u32);
                }
            }
        }
        let mut groups = Vec::with_capacity(buckets.len());
        let mut index = BTreeMap::new();
        for (key, global_ids) in buckets {
            let local_rules: Vec<Rule> = global_ids
                .iter()
                .map(|&gid| rules[gid as usize].1.clone())
                .collect();
            index.insert(key, groups.len());
            groups.push(RuleGroup {
                key,
                set: RuleSet::new(local_rules),
                global_ids,
            });
        }
        let (headers, monolithic_rules): (Vec<RuleHeader>, Vec<Rule>) = rules.into_iter().unzip();
        GroupedRuleSet {
            groups,
            index,
            headers,
            monolithic: RuleSet::new(monolithic_rules),
        }
    }

    /// The group keys a rule belongs to (deduplicated, deterministic
    /// order). Completeness invariant: for every flow the rule applies to,
    /// at least one of these keys is among the flow's selected keys — the
    /// destination/source cases cover explicit ports in either
    /// orientation, and everything else goes to a catch-all every flow of
    /// its protocol selects.
    fn keys_for(header: &RuleHeader) -> Vec<GroupKey> {
        if header.proto == Proto::Ip {
            // `ip` rules apply to flows of every protocol; the `Any` group
            // is merged into every lookup, so it is the one place they can
            // live without per-protocol duplication.
            return vec![GroupKey::Any];
        }
        let bidir = header.direction == Direction::Bidirectional;
        let mut keys = Vec::new();
        if let Some(ports) = header.dst.explicit_ports(MAX_GROUP_PORTS) {
            if !ports.is_empty() {
                for p in ports {
                    keys.push(GroupKey::Dst(header.proto, p));
                    if bidir {
                        keys.push(GroupKey::Src(header.proto, p));
                    }
                }
                return keys;
            }
        }
        if let Some(ports) = header.src.explicit_ports(MAX_GROUP_PORTS) {
            if !ports.is_empty() {
                for p in ports {
                    keys.push(GroupKey::Src(header.proto, p));
                    if bidir {
                        keys.push(GroupKey::Dst(header.proto, p));
                    }
                }
                return keys;
            }
        }
        // `any`, negated or wide specs — and unmatchable specs like
        // `[80,!80]`, which the applicability re-check rejects per flow.
        vec![GroupKey::Proto(header.proto)]
    }

    /// The groups a flow must be scanned against, as indices into
    /// [`GroupedRuleSet::groups`], in deterministic order: destination-port
    /// group, source-port group, protocol catch-all, `any` catch-all
    /// (present groups only).
    pub fn groups_for(&self, flow: FlowTuple) -> Vec<usize> {
        let candidates = [
            GroupKey::Dst(flow.proto, flow.dst_port),
            GroupKey::Src(flow.proto, flow.src_port),
            GroupKey::Proto(flow.proto),
            GroupKey::Any,
        ];
        candidates
            .iter()
            .filter_map(|key| self.index.get(key).copied())
            .collect()
    }

    /// All groups (index == what [`GroupedRuleSet::groups_for`] returns).
    pub fn groups(&self) -> &[RuleGroup] {
        &self.groups
    }

    /// One group by index.
    pub fn group(&self, index: usize) -> &RuleGroup {
        &self.groups[index]
    }

    /// The un-partitioned rule set (global rule ids).
    pub fn monolithic(&self) -> &RuleSet {
        &self.monolithic
    }

    /// The parsed headers, parallel to [`GroupedRuleSet::monolithic`] ids.
    pub fn headers(&self) -> &[RuleHeader] {
        &self.headers
    }

    /// Exact applicability of a (global) rule to a flow — the re-check
    /// grouped scanners run before reporting, so over-approximate group
    /// selection never changes scan semantics.
    pub fn applies_to(&self, rule: RuleId, flow: FlowTuple) -> bool {
        self.headers[rule.index()].applies_to(flow)
    }

    /// Global ids of every rule that applies to `flow` (the post-hoc
    /// filter of the monolithic differential oracle).
    pub fn applicable_rules(&self, flow: FlowTuple) -> Vec<RuleId> {
        self.headers
            .iter()
            .enumerate()
            .filter(|(_, h)| h.applies_to(flow))
            .map(|(i, _)| RuleId(i as u32))
            .collect()
    }

    /// Number of rules (global).
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// True if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Interns every content byte string of every rule into one shared
    /// [`PatternArena`] — the first pass of the two-pass shared-table
    /// build. Covers all anchor patterns of every group *and* of the
    /// monolithic set (anchors are contents), so any table built for any
    /// of them can resolve its pattern bytes through the arena.
    pub fn build_arena(&self) -> PatternArena {
        let mut builder = ArenaBuilder::new();
        for rule in self.monolithic.rules() {
            for content in rule.contents() {
                builder.intern(content.bytes());
            }
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::{parse_header, PortSpec};
    use crate::rule::RuleContent;
    use crate::snort::{parse_grouped, ParseOptions};
    use crate::ProtocolGroup;

    fn grouped(text: &str) -> GroupedRuleSet {
        GroupedRuleSet::new(parse_grouped(text, ParseOptions::default()).unwrap())
    }

    const RULES: &str = r#"
alert tcp any any -> any 80 (msg:"web"; content:"GET /admin"; sid:1;)
alert tcp any any -> any [80,8080] (msg:"alt"; content:"X-Forward"; sid:2;)
alert udp any any -> any 53 (msg:"dns"; content:"query"; sid:3;)
alert tcp any 6667 -> any any (msg:"irc"; content:"PRIVMSG"; sid:4;)
alert tcp any any -> any !80 (msg:"notweb"; content:"tunnel"; sid:5;)
alert ip any any -> any any (msg:"anywhere"; content:"evil-bytes"; sid:6;)
alert tcp any 445 <> any any (msg:"smb"; content:"|ff|SMB"; sid:7;)
"#;

    #[test]
    fn partitioning_places_rules_by_port() {
        let g = grouped(RULES);
        let key_of = |i: usize| g.group(i).key();
        // Destination groups for 80 (rules 1, 2) and 8080 (rule 2 only).
        let flow80 = FlowTuple::new(Proto::Tcp, 40000, 80);
        let selected: Vec<GroupKey> = g.groups_for(flow80).into_iter().map(key_of).collect();
        assert_eq!(
            selected,
            vec![
                GroupKey::Dst(Proto::Tcp, 80),
                GroupKey::Proto(Proto::Tcp),
                GroupKey::Any
            ]
        );
        let dst80 = g.groups_for(flow80)[0];
        let globals: Vec<u32> = g.group(dst80).global_ids().to_vec();
        assert_eq!(globals, vec![0, 1]);

        let flow8080 = FlowTuple::new(Proto::Tcp, 40000, 8080);
        let dst8080 = g.groups_for(flow8080)[0];
        assert_eq!(g.group(dst8080).key(), GroupKey::Dst(Proto::Tcp, 8080));
        assert_eq!(g.group(dst8080).global_ids(), &[1]);

        // The negated-port rule and nothing else sits in the tcp catch-all.
        let catch_all = *g.index.get(&GroupKey::Proto(Proto::Tcp)).unwrap();
        assert_eq!(g.group(catch_all).global_ids(), &[4]);
        // The ip rule sits in Any.
        let any = *g.index.get(&GroupKey::Any).unwrap();
        assert_eq!(g.group(any).global_ids(), &[5]);
    }

    #[test]
    fn source_port_rules_group_by_source() {
        let g = grouped(RULES);
        let flow = FlowTuple::new(Proto::Tcp, 6667, 9999);
        let keys: Vec<GroupKey> = g
            .groups_for(flow)
            .into_iter()
            .map(|i| g.group(i).key())
            .collect();
        assert!(keys.contains(&GroupKey::Src(Proto::Tcp, 6667)));
    }

    #[test]
    fn bidirectional_rules_are_reachable_from_both_orientations() {
        let g = grouped(RULES);
        // smb rule (global 6): src spec 445, `<>`.
        for flow in [
            FlowTuple::new(Proto::Tcp, 445, 1000),
            FlowTuple::new(Proto::Tcp, 1000, 445),
        ] {
            let member = g
                .groups_for(flow)
                .into_iter()
                .any(|i| g.group(i).global_ids().contains(&6));
            assert!(member, "{flow:?} must reach the smb rule");
            assert!(g.applies_to(RuleId(6), flow));
        }
    }

    #[test]
    fn selection_is_complete_for_every_applicable_rule() {
        // The invariant grouped scanning rests on: every rule that applies
        // to a flow is a member of at least one selected group.
        let g = grouped(RULES);
        let ports = [53u16, 80, 445, 6667, 8080, 9999];
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp] {
            for &src in &ports {
                for &dst in &ports {
                    let flow = FlowTuple::new(proto, src, dst);
                    let mut reachable: Vec<u32> = g
                        .groups_for(flow)
                        .into_iter()
                        .flat_map(|i| g.group(i).global_ids().iter().copied())
                        .collect();
                    reachable.sort_unstable();
                    for rule in g.applicable_rules(flow) {
                        assert!(
                            reachable.contains(&rule.0),
                            "rule {rule} applies to {flow:?} but no selected group holds it"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn local_rule_sets_are_self_contained() {
        let g = grouped(RULES);
        for group in g.groups() {
            assert_eq!(group.rules().len(), group.global_ids().len());
            // Local anchors compile independently; ids map back.
            assert!(group.rules().anchors().is_rule_bound());
            for (local, _) in group.rules().iter() {
                let global = group.global_id(local);
                assert_eq!(
                    g.monolithic().get(global).contents().len(),
                    group.rules().get(local).contents().len()
                );
            }
        }
    }

    #[test]
    fn arena_covers_every_content_and_deduplicates() {
        let text = r#"
alert tcp any any -> any 80 (content:"dup-bytes"; sid:1;)
alert tcp any any -> any 443 (content:"dup-bytes"; sid:2;)
alert tcp any any -> any 25 (content:"unique"; sid:3;)
"#;
        let g = grouped(text);
        let arena = g.build_arena();
        assert_eq!(arena.len(), "dup-bytes".len() + "unique".len());
        for rule in g.monolithic().rules() {
            for content in rule.contents() {
                assert!(arena.offset_of(content.bytes()).is_some());
            }
        }
    }

    #[test]
    fn unmatchable_specs_go_to_the_catch_all_and_never_apply() {
        let header = parse_header("alert tcp any any -> any [80,!80]").unwrap();
        let rule = Rule::new(ProtocolGroup::Other, vec![RuleContent::new(*b"abcd")]);
        let g = GroupedRuleSet::new(vec![(header, rule)]);
        assert_eq!(g.groups()[0].key(), GroupKey::Proto(Proto::Tcp));
        let flow = FlowTuple::new(Proto::Tcp, 1, 80);
        assert!(!g.applies_to(RuleId(0), flow));
        assert!(g.applicable_rules(flow).is_empty());
    }

    #[test]
    fn wide_spec_rules_select_via_catch_all() {
        let header = parse_header("alert tcp any any -> any 1:1024").unwrap();
        let rule = Rule::new(ProtocolGroup::Other, vec![RuleContent::new(*b"wide")]);
        let g = GroupedRuleSet::new(vec![(header, rule)]);
        let flow = FlowTuple::new(Proto::Tcp, 40000, 22);
        let keys: Vec<GroupKey> = g
            .groups_for(flow)
            .into_iter()
            .map(|i| g.group(i).key())
            .collect();
        assert_eq!(keys, vec![GroupKey::Proto(Proto::Tcp)]);
        assert!(g.applies_to(RuleId(0), flow));
        assert!(!g.applies_to(RuleId(0), FlowTuple::new(Proto::Tcp, 40000, 2000)));
    }

    #[test]
    fn empty_spec_helpers() {
        let g = GroupedRuleSet::new(Vec::new());
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert!(g.groups_for(FlowTuple::new(Proto::Tcp, 1, 2)).is_empty());
        let _ = PortSpec::any();
    }
}
