//! Minimal Snort rule parser: extracts exact-match `content:` strings.
//!
//! The paper builds its pattern sets from the `content:` options of Snort
//! rules (Snort v2.9.7 for S1, ET-open 2.9.0 for S2). Those rulesets are not
//! redistributable, so the workspace ships synthetic equivalents
//! ([`crate::synthetic`]) — but this parser lets a user who *does* have a
//! ruleset load it and reproduce the experiments on the real patterns.
//!
//! Supported subset of the rule language (sufficient for content extraction):
//!
//! * rule header: `action proto src sport direction dst dport ( options )` —
//!   only the protocol and the port fields are inspected, to derive the
//!   [`ProtocolGroup`];
//! * `content:"...";` options with Snort escaping: `\"`, `\\`, `\;`, `\:` and
//!   hex blocks `|41 42 43|`;
//! * `nocase;` — recorded but patterns are kept case-sensitive, matching the
//!   paper's exact-matching setting;
//! * all other options are skipped;
//! * comment lines (`#`) and blank lines are ignored.
//!
//! Each `content:` string becomes one pattern (the longest content of a rule
//! is what Snort hands to the multi-pattern matcher; we keep *all* contents,
//! which only increases the workload and is configurable via
//! [`ParseOptions::longest_content_only`]).

use crate::pattern::{Pattern, PatternSet, ProtocolGroup};
use std::fmt;

/// Options controlling rule parsing.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// If true, only the longest `content:` of each rule is kept (Snort's
    /// "fast pattern" behaviour). If false, every content string becomes a
    /// pattern.
    pub longest_content_only: bool,
    /// Minimum pattern length to keep (Snort never uses empty contents; 1 is
    /// the paper's setting since its rulesets contain 1-byte patterns).
    pub min_len: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            longest_content_only: true,
            min_len: 1,
        }
    }
}

/// A parse error, with the (1-based) line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the rule file.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole rule file into a [`PatternSet`].
///
/// Lines that are not rules (comments, blanks, preprocessor directives) are
/// skipped. Rules without any `content:` option contribute no patterns.
pub fn parse_rules(text: &str, options: ParseOptions) -> Result<PatternSet, ParseError> {
    let mut patterns = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rule_patterns) = parse_rule_line(trimmed, line_no, options)? {
            patterns.extend(rule_patterns);
        }
    }
    Ok(PatternSet::new(patterns))
}

/// Parses one rule line. Returns `Ok(None)` for lines that look like rules but
/// contain no content option.
fn parse_rule_line(
    line: &str,
    line_no: usize,
    options: ParseOptions,
) -> Result<Option<Vec<Pattern>>, ParseError> {
    let open = match line.find('(') {
        Some(i) => i,
        // Not a rule (e.g. a variable definition); ignore.
        None => return Ok(None),
    };
    let header = &line[..open];
    let close = line.rfind(')').ok_or_else(|| ParseError {
        line: line_no,
        message: "missing closing ')' in rule options".to_string(),
    })?;
    if close < open {
        return Err(ParseError {
            line: line_no,
            message: "')' appears before '('".to_string(),
        });
    }
    let body = &line[open + 1..close];
    let group = classify_header(header);

    let mut contents = Vec::new();
    for option in split_options(body) {
        let option = option.trim();
        if let Some(rest) = option.strip_prefix("content:") {
            let value = rest.trim();
            // content may be negated: content:!"..."; negated contents are not
            // part of the multi-pattern matching workload.
            if value.starts_with('!') {
                continue;
            }
            let bytes = parse_content_string(value, line_no)?;
            if bytes.len() >= options.min_len {
                contents.push(bytes);
            }
        }
    }
    if contents.is_empty() {
        return Ok(None);
    }
    if options.longest_content_only {
        contents.sort_by_key(|c| std::cmp::Reverse(c.len()));
        contents.truncate(1);
    }
    Ok(Some(
        contents
            .into_iter()
            .map(|bytes| Pattern::new(bytes, group))
            .collect(),
    ))
}

/// Derives the protocol group from the rule header (protocol and ports).
fn classify_header(header: &str) -> ProtocolGroup {
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    // header: action proto src sport direction dst dport
    let proto = tokens.get(1).copied().unwrap_or("");
    let ports: Vec<&str> = tokens.iter().skip(2).copied().collect();
    let has_port = |p: &str| ports.iter().any(|t| t.contains(p));
    if has_port("$http_ports") || has_port("80") || lower.contains("http") {
        ProtocolGroup::Http
    } else if proto == "udp" && (has_port("53") || lower.contains("dns")) {
        ProtocolGroup::Dns
    } else if has_port("21") || lower.contains("ftp") {
        ProtocolGroup::Ftp
    } else if has_port("25") || lower.contains("smtp") || lower.contains("mail") {
        ProtocolGroup::Smtp
    } else if ports.contains(&"any") && proto == "ip" {
        ProtocolGroup::Any
    } else {
        ProtocolGroup::Other
    }
}

/// Splits a rule option body on ';', honouring quoted strings and escapes.
fn split_options(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escape = false;
    for c in body.chars() {
        if escape {
            current.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escape = true;
            }
            '"' => {
                current.push(c);
                in_quotes = !in_quotes;
            }
            ';' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Parses a Snort content value: a double-quoted string with `\` escapes and
/// `|41 42|` hex blocks.
fn parse_content_string(value: &str, line_no: usize) -> Result<Vec<u8>, ParseError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line: line_no,
            message: format!("content value is not quoted: {value:?}"),
        })?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars().peekable();
    let mut in_hex = false;
    let mut hex_buf = String::new();
    while let Some(c) = chars.next() {
        if in_hex {
            if c == '|' {
                // Flush the hex block.
                for tok in hex_buf.split_whitespace() {
                    let b = u8::from_str_radix(tok, 16).map_err(|_| ParseError {
                        line: line_no,
                        message: format!("invalid hex byte {tok:?} in content"),
                    })?;
                    bytes.push(b);
                }
                hex_buf.clear();
                in_hex = false;
            } else {
                hex_buf.push(c);
            }
            continue;
        }
        match c {
            '|' => in_hex = true,
            '\\' => {
                let escaped = chars.next().ok_or_else(|| ParseError {
                    line: line_no,
                    message: "dangling escape at end of content".to_string(),
                })?;
                bytes.push(escaped as u8);
            }
            _ => {
                let mut buf = [0u8; 4];
                bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    if in_hex {
        return Err(ParseError {
            line: line_no,
            message: "unterminated hex block in content".to_string(),
        });
    }
    if bytes.is_empty() {
        return Err(ParseError {
            line: line_no,
            message: "empty content string".to_string(),
        });
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULE: &str = r#"alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"WEB attack"; flow:to_server,established; content:"GET /etc/passwd"; nocase; sid:1001; rev:2;)"#;

    #[test]
    fn parses_simple_http_rule() {
        let set = parse_rules(RULE, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"GET /etc/passwd");
        assert_eq!(p.group(), ProtocolGroup::Http);
    }

    #[test]
    fn hex_blocks_and_escapes() {
        let rule = r#"alert tcp any any -> any 445 (content:"|00 01 02|AB\;C|ff|"; sid:1;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), &[0x00, 0x01, 0x02, b'A', b'B', b';', b'C', 0xff]);
    }

    #[test]
    fn longest_content_only_vs_all_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; content:"a much longer content string"; sid:2;)"#;
        let longest = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(longest.len(), 1);
        assert_eq!(
            longest.iter().next().unwrap().1.bytes(),
            b"a much longer content string"
        );
        let all = parse_rules(
            rule,
            ParseOptions {
                longest_content_only: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn negated_content_is_skipped() {
        let rule = r#"alert tcp any any -> any 80 (content:!"not this"; content:"this"; sid:3;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"this");
    }

    #[test]
    fn comments_blank_lines_and_non_rules_are_ignored() {
        let text = "# a comment\n\nvar HOME_NET 10.0.0.0/8\n".to_string() + RULE;
        let set = parse_rules(&text, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rules_without_content_yield_nothing() {
        let rule = r#"alert icmp any any -> any any (msg:"ping"; itype:8; sid:4;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn semicolons_inside_quotes_do_not_split_options() {
        let rule = r#"alert tcp any any -> any 80 (msg:"has; semicolon"; content:"a;b"; sid:5;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"a;b");
    }

    #[test]
    fn error_on_unterminated_hex_block() {
        let rule = r#"alert tcp any any -> any 80 (content:"|41 42"; sid:6;)"#;
        let err = parse_rules(rule, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_on_missing_close_paren() {
        let rule = r#"alert tcp any any -> any 80 (content:"x"; sid:7;"#;
        assert!(parse_rules(rule, ParseOptions::default()).is_err());
    }

    #[test]
    fn protocol_classification() {
        assert_eq!(
            classify_header("alert tcp any any -> any $HTTP_PORTS "),
            ProtocolGroup::Http
        );
        assert_eq!(
            classify_header("alert udp any any -> any 53 "),
            ProtocolGroup::Dns
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 25 "),
            ProtocolGroup::Smtp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 21 "),
            ProtocolGroup::Ftp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 6667 "),
            ProtocolGroup::Other
        );
    }

    #[test]
    fn min_len_filters_short_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"ab"; sid:8;)"#;
        let set = parse_rules(
            rule,
            ParseOptions {
                min_len: 3,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert!(set.is_empty());
    }
}
