//! Minimal Snort rule parser: extracts exact-match `content:` strings.
//!
//! The paper builds its pattern sets from the `content:` options of Snort
//! rules (Snort v2.9.7 for S1, ET-open 2.9.0 for S2). Those rulesets are not
//! redistributable, so the workspace ships synthetic equivalents
//! ([`crate::synthetic`]) — but this parser lets a user who *does* have a
//! ruleset load it and reproduce the experiments on the real patterns.
//!
//! Supported subset of the rule language (sufficient for content extraction):
//!
//! * rule header: `action proto src sport direction dst dport ( options )` —
//!   only the protocol and the port fields are inspected, to derive the
//!   [`ProtocolGroup`];
//! * `content:"...";` options with Snort escaping: `\"`, `\\`, `\;`, `\:` and
//!   hex blocks — both whitespace-separated (`|41 42 43|`) and contiguous
//!   (`|414243|`) byte pairs, and any mix of the two, as Snort accepts;
//! * `nocase;` — sets the **case-insensitivity flag** of the `content:` it
//!   modifies (the immediately preceding one, per Snort's modifier rules).
//!   The resulting [`Pattern`] reports [`Pattern::is_nocase`]` == true` and
//!   every engine in the workspace matches it ASCII-case-insensitively while
//!   the rest of the set stays byte-exact — see the filter-folded /
//!   verify-exact contract in `DEVELOPMENT.md`. A `nocase` with no preceding
//!   content (or following a negated content) is ignored, as Snort does not
//!   accept such rules anyway;
//! * the positional modifiers `offset:`/`depth:` (absolute) and
//!   `distance:`/`within:` (relative to the previous content's match) —
//!   each binds to the immediately preceding content. A positional modifier
//!   **before any content** is a [`ParseError`] (there is nothing for it to
//!   modify, and silently dropping it would change the rule's meaning); one
//!   following a *negated* content is ignored, mirroring the `nocase`
//!   precedent above. `depth`/`within` smaller than their content, duplicate
//!   modifiers, and mixing the absolute and relative families on one
//!   content are rejected, as Snort rejects them;
//! * `sid:` is recorded on the parsed [`Rule`];
//! * all other options are skipped;
//! * comment lines (`#`) and blank lines are ignored.
//!
//! Two entry points share one parsing path:
//!
//! * [`parse_rules`] — the pattern-set view: each `content:` string becomes
//!   one [`Pattern`] (positional modifiers dropped; the longest content of a
//!   rule is what Snort hands to the multi-pattern matcher, configurable via
//!   [`ParseOptions::longest_content_only`]);
//! * [`parse_ruleset`] — the rule view: every content **with** its
//!   positional constraints becomes part of a [`Rule`], and the returned
//!   [`RuleSet`] carries the per-rule anchor patterns for the engines plus
//!   everything the confirmation stage needs.

use crate::pattern::{Pattern, PatternSet, ProtocolGroup};
use crate::ports::{self, RuleHeader};
use crate::rule::{Rule, RuleContent, RuleSet};
use std::fmt;

/// Options controlling rule parsing.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// If true, only the longest `content:` of each rule is kept (Snort's
    /// "fast pattern" behaviour). If false, every content string becomes a
    /// pattern.
    pub longest_content_only: bool,
    /// Minimum pattern length to keep (Snort never uses empty contents; 1 is
    /// the paper's setting since its rulesets contain 1-byte patterns).
    pub min_len: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            longest_content_only: true,
            min_len: 1,
        }
    }
}

/// A parse error, with the (1-based) line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the rule file.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole rule file into a [`PatternSet`].
///
/// Lines that are not rules (comments, blanks, preprocessor directives) are
/// skipped. Rules without any `content:` option contribute no patterns.
pub fn parse_rules(text: &str, options: ParseOptions) -> Result<PatternSet, ParseError> {
    let mut patterns = Vec::new();
    for (line_no, line) in rule_lines(text) {
        if let Some(parsed) = parse_rule_body(line, line_no)? {
            // The pattern-set view: contents become patterns, positional
            // modifiers are dropped (they are the confirmation stage's job),
            // short contents are filtered per min_len.
            let mut contents: Vec<RuleContent> = parsed
                .contents
                .into_iter()
                .filter(|c| c.len() >= options.min_len)
                .collect();
            if contents.is_empty() {
                continue;
            }
            if options.longest_content_only {
                contents.sort_by_key(|c| std::cmp::Reverse(c.len()));
                contents.truncate(1);
            }
            patterns.extend(contents.into_iter().map(|c| {
                Pattern::new(c.bytes().to_vec(), parsed.group).with_nocase(c.is_nocase())
            }));
        }
    }
    Ok(PatternSet::new(patterns))
}

/// Parses a whole rule file into a [`RuleSet`]: every rule keeps **all** of
/// its contents with their positional constraints, anchors are selected over
/// the set's statistics, and [`RuleSet::anchors`] is the rule-bound pattern
/// set to compile an engine for.
///
/// [`ParseOptions::longest_content_only`] is ignored here — evaluating a
/// rule requires all of its contents. A rule with *any* content shorter than
/// [`ParseOptions::min_len`] is skipped entirely (evaluating it without the
/// short content would change its meaning); rules without contents are
/// skipped as in [`parse_rules`].
pub fn parse_ruleset(text: &str, options: ParseOptions) -> Result<RuleSet, ParseError> {
    let mut rules = Vec::new();
    for (line_no, line) in rule_lines(text) {
        if let Some(parsed) = parse_rule_body(line, line_no)? {
            if parsed.contents.is_empty()
                || parsed.contents.iter().any(|c| c.len() < options.min_len)
            {
                continue;
            }
            rules.push(Rule::new(parsed.group, parsed.contents).with_sid(parsed.sid));
        }
    }
    Ok(RuleSet::new(rules))
}

/// Parses a whole rule file into `(header, rule)` pairs — the input of
/// [`crate::group::GroupedRuleSet`]: the rule view of [`parse_ruleset`],
/// keeping each rule's parsed [`RuleHeader`] so the port-group partitioner
/// can place it and per-flow scanning can test applicability exactly.
///
/// Unlike the older entry points, a rule line whose header does not parse
/// (wrong field count, unknown protocol or direction, malformed port spec)
/// is a [`ParseError`] here: grouped scanning *depends* on the header, so
/// silently guessing one would change which flows a rule fires on.
pub fn parse_grouped(
    text: &str,
    options: ParseOptions,
) -> Result<Vec<(RuleHeader, Rule)>, ParseError> {
    let mut rules = Vec::new();
    for (line_no, line) in rule_lines(text) {
        if let Some(parsed) = parse_rule_body(line, line_no)? {
            if parsed.contents.is_empty()
                || parsed.contents.iter().any(|c| c.len() < options.min_len)
            {
                continue;
            }
            let header = parsed.header.ok_or_else(|| ParseError {
                line: line_no,
                message: parsed
                    .header_error
                    .unwrap_or_else(|| "malformed rule header".to_string()),
            })?;
            rules.push((
                header,
                Rule::new(parsed.group, parsed.contents).with_sid(parsed.sid),
            ));
        }
    }
    Ok(rules)
}

/// The non-comment, non-blank lines of a rule file, 1-based.
fn rule_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(idx, line)| {
        let trimmed = line.trim();
        (!trimmed.is_empty() && !trimmed.starts_with('#')).then_some((idx + 1, trimmed))
    })
}

/// One parsed rule line, before either view (patterns / rules) is derived.
struct ParsedRule {
    group: ProtocolGroup,
    /// The structured header, when it parsed ([`parse_grouped`] requires
    /// it; the pattern/rule views only need `group`).
    header: Option<RuleHeader>,
    /// Why the header failed to parse, for [`parse_grouped`]'s error.
    header_error: Option<String>,
    sid: Option<u32>,
    contents: Vec<RuleContent>,
}

/// Which modifiers a content has already received (for duplicate and
/// family-mixing detection; `offset` needs a flag because its default, 0,
/// is also a legal explicit value).
#[derive(Clone, Copy, Default)]
struct ModifierFlags {
    offset: bool,
    depth: bool,
    distance: bool,
    within: bool,
}

/// Parses one rule line into its header group, sid and contents-with-
/// modifiers. Returns `Ok(None)` for lines that are not rules.
fn parse_rule_body(line: &str, line_no: usize) -> Result<Option<ParsedRule>, ParseError> {
    let open = match line.find('(') {
        Some(i) => i,
        // Not a rule (e.g. a variable definition); ignore.
        None => return Ok(None),
    };
    let header = &line[..open];
    let close = line.rfind(')').ok_or_else(|| ParseError {
        line: line_no,
        message: "missing closing ')' in rule options".to_string(),
    })?;
    if close < open {
        return Err(ParseError {
            line: line_no,
            message: "')' appears before '('".to_string(),
        });
    }
    let body = &line[open + 1..close];
    let (parsed_header, header_error) = match ports::parse_header(header) {
        Ok(h) => (Some(h), None),
        Err(e) => (None, Some(e)),
    };
    let group = classify(header, parsed_header.as_ref());

    // Modifier options bind to the content option they follow, so we track
    // the index of the most recent kept content; a negated (skipped) content
    // resets it so its trailing modifiers cannot leak onto the previous
    // content. `any_content` distinguishes "modifier after a negated
    // content" (ignored, like nocase) from "modifier before any content at
    // all" (a hard error: there is nothing it could bind to).
    let mut contents: Vec<RuleContent> = Vec::new();
    let mut flags: Vec<ModifierFlags> = Vec::new();
    let mut last_content: Option<usize> = None;
    let mut any_content = false;
    let mut sid = None;
    for option in split_options(body) {
        let option = option.trim();
        if let Some(rest) = option.strip_prefix("content:") {
            let value = rest.trim();
            // content may be negated: content:!"..."; negated contents are not
            // part of the multi-pattern matching workload.
            if value.starts_with('!') {
                last_content = None;
                any_content = true;
                continue;
            }
            let bytes = parse_content_string(value, line_no)?;
            contents.push(RuleContent::new(bytes));
            flags.push(ModifierFlags::default());
            last_content = Some(contents.len() - 1);
            any_content = true;
        } else if option == "nocase" {
            if let Some(idx) = last_content {
                contents[idx].set_nocase(true);
            }
        } else if let Some((name, value)) = split_modifier(option) {
            apply_positional_modifier(
                name,
                value,
                &mut contents,
                &mut flags,
                last_content,
                any_content,
                line_no,
            )?;
        } else if let Some(rest) = option.strip_prefix("sid:") {
            sid = rest.trim().parse::<u32>().ok();
        }
    }
    Ok(Some(ParsedRule {
        group,
        header: parsed_header,
        header_error,
        sid,
        contents,
    }))
}

/// Splits a `name:value` option when `name` is a positional modifier.
fn split_modifier(option: &str) -> Option<(&'static str, &str)> {
    for name in ["offset", "depth", "distance", "within"] {
        if let Some(rest) = option.strip_prefix(name) {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix(':') {
                return Some((name, value.trim()));
            }
        }
    }
    None
}

/// Attaches one positional modifier to the preceding content, enforcing
/// Snort's binding and validity rules.
fn apply_positional_modifier(
    name: &'static str,
    value: &str,
    contents: &mut [RuleContent],
    flags: &mut [ModifierFlags],
    last_content: Option<usize>,
    any_content: bool,
    line_no: usize,
) -> Result<(), ParseError> {
    let err = |message: String| ParseError {
        line: line_no,
        message,
    };
    let idx = match last_content {
        Some(idx) => idx,
        // Mirrors the nocase rule: a modifier trailing a *negated* content
        // is ignored with the content it modified; one before any content
        // at all has nothing to bind to and the rule is malformed.
        None if any_content => return Ok(()),
        None => {
            return Err(err(format!(
                "{name} before any content: positional modifiers bind to the preceding content"
            )))
        }
    };
    let parsed: i64 = value
        .parse()
        .map_err(|_| err(format!("invalid {name} value {value:?}")))?;
    if name != "distance" && !(0..=u32::MAX as i64).contains(&parsed) {
        return Err(err(format!("{name} value {parsed} out of range")));
    }
    if name == "distance" && i32::try_from(parsed).is_err() {
        return Err(err(format!("distance value {parsed} out of range")));
    }
    let f = &mut flags[idx];
    let duplicate = match name {
        "offset" => f.offset,
        "depth" => f.depth,
        "distance" => f.distance,
        _ => f.within,
    };
    if duplicate {
        return Err(err(format!("duplicate {name} modifier on one content")));
    }
    let absolute = name == "offset" || name == "depth";
    let mixed = if absolute {
        f.distance || f.within
    } else {
        f.offset || f.depth
    };
    if mixed {
        return Err(err(format!(
            "{name} cannot combine with a modifier of the other family \
             (offset/depth are absolute, distance/within are relative)"
        )));
    }
    let len = contents[idx].len() as i64;
    if (name == "depth" || name == "within") && parsed < len {
        return Err(err(format!(
            "{name} {parsed} smaller than its content ({len} bytes)"
        )));
    }
    match name {
        "offset" => {
            f.offset = true;
            contents[idx].set_offset(parsed as u32);
        }
        "depth" => {
            f.depth = true;
            contents[idx].set_depth(parsed as u32);
        }
        "distance" => {
            f.distance = true;
            contents[idx].set_distance(parsed as i32);
        }
        _ => {
            f.within = true;
            contents[idx].set_within(parsed as u32);
        }
    }
    Ok(())
}

/// Derives the protocol group from the rule header — a thin wrapper over
/// the structured port parser ([`ports::protocol_group`]): ports classify
/// by *exact* membership in the header's explicit port sets, so `8080`,
/// `800` or `1808` no longer classify as HTTP the way the old
/// `token.contains("80")` substring heuristic made them. Headers whose
/// structure names no known service fall back to service names appearing
/// in the header text (`$HTTP_SERVERS`-style address variables).
#[cfg(test)]
fn classify_header(header: &str) -> ProtocolGroup {
    classify(header, ports::parse_header(header).ok().as_ref())
}

/// Classification over an already-parsed header (when it parsed), shared
/// with `parse_rule_body` so the header is only parsed once per rule line.
fn classify(header: &str, parsed: Option<&RuleHeader>) -> ProtocolGroup {
    let structural = parsed.map(ports::protocol_group);
    match structural {
        Some(ProtocolGroup::Other) | None => {
            let lower = header.to_ascii_lowercase();
            let is_udp = parsed.map_or_else(
                || lower.split_whitespace().nth(1) == Some("udp"),
                |h| h.proto == ports::Proto::Udp,
            );
            if lower.contains("http") {
                ProtocolGroup::Http
            } else if is_udp && lower.contains("dns") {
                ProtocolGroup::Dns
            } else if lower.contains("ftp") {
                ProtocolGroup::Ftp
            } else if lower.contains("smtp") || lower.contains("mail") {
                ProtocolGroup::Smtp
            } else {
                ProtocolGroup::Other
            }
        }
        Some(group) => group,
    }
}

/// Splits a rule option body on ';', honouring quoted strings and escapes.
fn split_options(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escape = false;
    for c in body.chars() {
        if escape {
            current.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escape = true;
            }
            '"' => {
                current.push(c);
                in_quotes = !in_quotes;
            }
            ';' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Parses a Snort content value: a double-quoted string with `\` escapes and
/// `|41 42|` hex blocks.
fn parse_content_string(value: &str, line_no: usize) -> Result<Vec<u8>, ParseError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line: line_no,
            message: format!("content value is not quoted: {value:?}"),
        })?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars().peekable();
    let mut in_hex = false;
    let mut hex_buf = String::new();
    while let Some(c) = chars.next() {
        if in_hex {
            if c == '|' {
                // Flush the hex block. Snort accepts both whitespace-
                // separated bytes (`|41 42|`) and contiguous runs of byte
                // pairs (`|4142|`, `|41 4243|`): each whitespace-delimited
                // token must be an even-length run of hex digits and is
                // consumed two digits per byte. Odd-length runs and non-hex
                // characters are still rejected.
                for tok in hex_buf.split_whitespace() {
                    if !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(ParseError {
                            line: line_no,
                            message: format!("invalid hex byte {tok:?} in content"),
                        });
                    }
                    if tok.len() % 2 != 0 {
                        return Err(ParseError {
                            line: line_no,
                            message: format!(
                                "odd-length hex run {tok:?} in content (hex bytes are two digits each)"
                            ),
                        });
                    }
                    for pair in tok.as_bytes().chunks_exact(2) {
                        let hi = (pair[0] as char).to_digit(16).expect("checked hex digit");
                        let lo = (pair[1] as char).to_digit(16).expect("checked hex digit");
                        bytes.push((hi * 16 + lo) as u8);
                    }
                }
                hex_buf.clear();
                in_hex = false;
            } else {
                hex_buf.push(c);
            }
            continue;
        }
        match c {
            '|' => in_hex = true,
            '\\' => {
                let escaped = chars.next().ok_or_else(|| ParseError {
                    line: line_no,
                    message: "dangling escape at end of content".to_string(),
                })?;
                bytes.push(escaped as u8);
            }
            _ => {
                let mut buf = [0u8; 4];
                bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    if in_hex {
        return Err(ParseError {
            line: line_no,
            message: "unterminated hex block in content".to_string(),
        });
    }
    if bytes.is_empty() {
        return Err(ParseError {
            line: line_no,
            message: "empty content string".to_string(),
        });
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULE: &str = r#"alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"WEB attack"; flow:to_server,established; content:"GET /etc/passwd"; nocase; sid:1001; rev:2;)"#;

    #[test]
    fn parses_simple_http_rule() {
        let set = parse_rules(RULE, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"GET /etc/passwd");
        assert_eq!(p.group(), ProtocolGroup::Http);
        assert!(p.is_nocase(), "the rule carries a nocase; modifier");
    }

    #[test]
    fn nocase_applies_to_the_preceding_content_only() {
        let rule = r#"alert tcp any any -> any 80 (content:"CaseSensitive"; content:"FoldMe-longer"; nocase; sid:10;)"#;
        let set = parse_rules(
            rule,
            ParseOptions {
                longest_content_only: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        let flags: Vec<(Vec<u8>, bool)> = set
            .iter()
            .map(|(_, p)| (p.bytes().to_vec(), p.is_nocase()))
            .collect();
        assert_eq!(
            flags,
            vec![
                (b"CaseSensitive".to_vec(), false),
                (b"FoldMe-longer".to_vec(), true),
            ]
        );
    }

    #[test]
    fn nocase_survives_longest_content_selection() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; content:"the-much-longer-one"; nocase; sid:11;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"the-much-longer-one");
        assert!(p.is_nocase());
    }

    #[test]
    fn nocase_after_negated_content_is_ignored() {
        let rule = r#"alert tcp any any -> any 80 (content:"keepme"; content:!"skipped"; nocase; sid:12;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"keepme");
        assert!(
            !p.is_nocase(),
            "a nocase modifying a negated content must not leak onto the previous pattern"
        );
    }

    #[test]
    fn hex_blocks_and_escapes() {
        let rule = r#"alert tcp any any -> any 445 (content:"|00 01 02|AB\;C|ff|"; sid:1;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), &[0x00, 0x01, 0x02, b'A', b'B', b';', b'C', 0xff]);
    }

    #[test]
    fn longest_content_only_vs_all_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; content:"a much longer content string"; sid:2;)"#;
        let longest = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(longest.len(), 1);
        assert_eq!(
            longest.iter().next().unwrap().1.bytes(),
            b"a much longer content string"
        );
        let all = parse_rules(
            rule,
            ParseOptions {
                longest_content_only: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn contiguous_hex_runs_are_byte_pairs() {
        // `|4142|` is Snort-legal and means the same as `|41 42|`.
        for rule in [
            r#"alert tcp any any -> any 445 (content:"|41 42 43|"; sid:20;)"#,
            r#"alert tcp any any -> any 445 (content:"|414243|"; sid:21;)"#,
            r#"alert tcp any any -> any 445 (content:"|41 4243|"; sid:22;)"#,
            r#"alert tcp any any -> any 445 (content:"|4142 43|"; sid:23;)"#,
        ] {
            let set = parse_rules(rule, ParseOptions::default()).unwrap();
            assert_eq!(set.iter().next().unwrap().1.bytes(), b"ABC", "{rule}");
        }
    }

    #[test]
    fn odd_length_and_garbage_hex_runs_error() {
        let odd = r#"alert tcp any any -> any 80 (content:"|41424|"; sid:24;)"#;
        let err = parse_rules(odd, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("odd-length"), "{}", err.message);

        let garbage = r#"alert tcp any any -> any 80 (content:"|41zz|"; sid:25;)"#;
        let err = parse_rules(garbage, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("invalid hex byte"), "{}", err.message);
    }

    #[test]
    fn negated_content_is_skipped() {
        let rule = r#"alert tcp any any -> any 80 (content:!"not this"; content:"this"; sid:3;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"this");
    }

    #[test]
    fn comments_blank_lines_and_non_rules_are_ignored() {
        let text = "# a comment\n\nvar HOME_NET 10.0.0.0/8\n".to_string() + RULE;
        let set = parse_rules(&text, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rules_without_content_yield_nothing() {
        let rule = r#"alert icmp any any -> any any (msg:"ping"; itype:8; sid:4;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn semicolons_inside_quotes_do_not_split_options() {
        let rule = r#"alert tcp any any -> any 80 (msg:"has; semicolon"; content:"a;b"; sid:5;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"a;b");
    }

    #[test]
    fn error_on_unterminated_hex_block() {
        let rule = r#"alert tcp any any -> any 80 (content:"|41 42"; sid:6;)"#;
        let err = parse_rules(rule, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_on_missing_close_paren() {
        let rule = r#"alert tcp any any -> any 80 (content:"x"; sid:7;"#;
        assert!(parse_rules(rule, ParseOptions::default()).is_err());
    }

    #[test]
    fn protocol_classification() {
        assert_eq!(
            classify_header("alert tcp any any -> any $HTTP_PORTS "),
            ProtocolGroup::Http
        );
        assert_eq!(
            classify_header("alert udp any any -> any 53 "),
            ProtocolGroup::Dns
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 25 "),
            ProtocolGroup::Smtp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 21 "),
            ProtocolGroup::Ftp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 6667 "),
            ProtocolGroup::Other
        );
    }

    #[test]
    fn port_classification_is_exact_not_substring() {
        // Regression: the old heuristic used `token.contains("80")`, so any
        // port whose digits merely contained "80" classified as HTTP.
        for header in [
            "alert tcp any any -> any 8080 ",
            "alert tcp any any -> any 800 ",
            "alert tcp any any -> any 1808 ",
            "alert tcp any any -> any 2125 ", // contains "21" and "25"
            "alert tcp any any -> any 5353 ", // contains "53"
        ] {
            assert_eq!(classify_header(header), ProtocolGroup::Other, "{header}");
        }
        // Exact membership in a port list still classifies.
        assert_eq!(
            classify_header("alert tcp any any -> any [80,443] "),
            ProtocolGroup::Http
        );
        // Service names in address variables still classify (fallback).
        assert_eq!(
            classify_header("alert tcp any any -> $HTTP_SERVERS 8080 "),
            ProtocolGroup::Http
        );
    }

    #[test]
    fn parse_grouped_keeps_headers() {
        use crate::ports::{FlowTuple, Proto};
        let text = r#"
alert tcp any any -> any 80 (msg:"web"; content:"GET /"; sid:50;)
alert udp any any -> any 53 (msg:"dns"; content:"query"; sid:51;)
alert tcp any 445 <> any any (msg:"smb"; content:"|ff|SMB"; sid:52;)
"#;
        let rules = parse_grouped(text, ParseOptions::default()).unwrap();
        assert_eq!(rules.len(), 3);
        let (h, r) = &rules[0];
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 40000, 80)));
        assert!(!h.applies_to(FlowTuple::new(Proto::Tcp, 40000, 81)));
        assert_eq!(r.sid(), Some(50));
        let (h, _) = &rules[2];
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 1000, 445)));
        assert!(h.applies_to(FlowTuple::new(Proto::Tcp, 445, 1000)));
    }

    #[test]
    fn parse_grouped_rejects_malformed_headers() {
        // 6 header fields: no destination port. The older views cannot
        // error here (they only need a best-effort group), but the grouped
        // view depends on the header, so it must.
        let text = r#"alert tcp any any -> any (msg:"x"; content:"abcd"; sid:53;)"#;
        let err = parse_grouped(text, ParseOptions::default()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("header"), "{}", err.message);
        // A malformed port spec in the header errors too.
        let bad_ports = r#"alert tcp any any -> any !any (msg:"x"; content:"abcd"; sid:54;)"#;
        assert!(parse_grouped(bad_ports, ParseOptions::default()).is_err());
    }

    // --- positional modifiers (offset/depth/distance/within) ---

    #[test]
    fn modifiers_bind_to_the_preceding_content() {
        let rule = r#"alert tcp any any -> any 80 (content:"first"; offset:2; depth:10; content:"second"; distance:3; within:9; nocase; sid:30;)"#;
        let set = parse_ruleset(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let contents = set.get(crate::rule::RuleId(0)).contents();
        assert_eq!(contents.len(), 2);
        assert_eq!(contents[0].bytes(), b"first");
        assert_eq!(contents[0].offset(), 2);
        assert_eq!(contents[0].depth(), Some(10));
        assert_eq!(contents[0].distance(), None);
        assert!(!contents[0].is_nocase());
        assert_eq!(contents[1].bytes(), b"second");
        assert_eq!(contents[1].distance(), Some(3));
        assert_eq!(contents[1].within(), Some(9));
        assert_eq!(contents[1].offset(), 0);
        assert!(contents[1].is_nocase());
    }

    #[test]
    fn each_modifier_before_any_content_is_an_error() {
        for modifier in ["offset:1", "depth:5", "distance:2", "within:6"] {
            let rule = format!(
                r#"alert tcp any any -> any 80 (msg:"x"; {modifier}; content:"late"; sid:31;)"#
            );
            let err = parse_ruleset(&rule, ParseOptions::default()).unwrap_err();
            assert!(
                err.message.contains("before any content"),
                "{modifier}: {}",
                err.message
            );
            // Both views share the parsing path, so the pattern view errors
            // identically instead of silently dropping the modifier.
            assert!(
                parse_rules(&rule, ParseOptions::default()).is_err(),
                "{modifier}"
            );
        }
    }

    #[test]
    fn each_modifier_after_negated_content_is_ignored() {
        // Mirrors nocase_after_negated_content_is_ignored: the modifier
        // binds to the negated (dropped) content and vanishes with it.
        for modifier in ["offset:1", "depth:7", "distance:2", "within:8"] {
            let rule = format!(
                r#"alert tcp any any -> any 80 (content:"keepme"; content:!"skipped"; {modifier}; sid:32;)"#
            );
            let set = parse_ruleset(&rule, ParseOptions::default()).unwrap();
            let contents = set.get(crate::rule::RuleId(0)).contents();
            assert_eq!(contents.len(), 1, "{modifier}");
            assert_eq!(contents[0].offset(), 0, "{modifier}");
            assert_eq!(contents[0].depth(), None, "{modifier}");
            assert_eq!(contents[0].distance(), None, "{modifier}");
            assert_eq!(contents[0].within(), None, "{modifier}");
        }
    }

    #[test]
    fn depth_and_within_smaller_than_their_content_error() {
        let depth = r#"alert tcp any any -> any 80 (content:"abcd"; depth:3; sid:33;)"#;
        let err = parse_ruleset(depth, ParseOptions::default()).unwrap_err();
        assert!(
            err.message.contains("smaller than its content"),
            "{}",
            err.message
        );
        let within =
            r#"alert tcp any any -> any 80 (content:"ab"; content:"abcd"; within:3; sid:34;)"#;
        let err = parse_ruleset(within, ParseOptions::default()).unwrap_err();
        assert!(
            err.message.contains("smaller than its content"),
            "{}",
            err.message
        );
    }

    #[test]
    fn duplicate_and_mixed_family_modifiers_error() {
        let dup = r#"alert tcp any any -> any 80 (content:"abcd"; offset:1; offset:2; sid:35;)"#;
        let err = parse_ruleset(dup, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
        let mixed = r#"alert tcp any any -> any 80 (content:"ab"; content:"cd"; distance:1; depth:8; sid:36;)"#;
        let err = parse_ruleset(mixed, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("other family"), "{}", err.message);
    }

    #[test]
    fn garbage_and_out_of_range_modifier_values_error() {
        let garbage = r#"alert tcp any any -> any 80 (content:"ab"; offset:abc; sid:37;)"#;
        assert!(parse_ruleset(garbage, ParseOptions::default())
            .unwrap_err()
            .message
            .contains("invalid offset value"));
        let negative = r#"alert tcp any any -> any 80 (content:"ab"; depth:-4; sid:38;)"#;
        assert!(parse_ruleset(negative, ParseOptions::default())
            .unwrap_err()
            .message
            .contains("out of range"));
        // distance may be negative (Snort allows backwards-relative search).
        let back =
            r#"alert tcp any any -> any 80 (content:"ab"; content:"cd"; distance:-2; sid:39;)"#;
        let set = parse_ruleset(back, ParseOptions::default()).unwrap();
        assert_eq!(
            set.get(crate::rule::RuleId(0)).contents()[1].distance(),
            Some(-2)
        );
    }

    #[test]
    fn parse_rules_ignores_positional_modifiers_for_the_pattern_view() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; offset:4; content:"the-much-longer-one"; distance:1; sid:40;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"the-much-longer-one");
    }

    #[test]
    fn parse_ruleset_keeps_all_contents_and_records_sid() {
        let text = r#"
# two multi-content rules and a content-less one
alert tcp any any -> any 80 (msg:"a"; content:"GET /"; content:"passwd"; distance:0; sid:41;)
alert icmp any any -> any any (msg:"ping"; itype:8; sid:42;)
alert tcp any any -> any 25 (msg:"b"; content:"VRFY"; sid:43;)
"#;
        let set = parse_ruleset(text, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 2, "the content-less rule contributes nothing");
        assert_eq!(set.get(crate::rule::RuleId(0)).sid(), Some(41));
        assert_eq!(set.get(crate::rule::RuleId(0)).contents().len(), 2);
        assert_eq!(set.get(crate::rule::RuleId(1)).sid(), Some(43));
        assert_eq!(set.get(crate::rule::RuleId(1)).group(), ProtocolGroup::Smtp);
        assert!(set.anchors().is_rule_bound());
    }

    #[test]
    fn parse_ruleset_skips_rules_with_sub_min_len_contents() {
        let text = r#"alert tcp any any -> any 80 (content:"ab"; content:"longenough"; sid:44;)"#;
        let set = parse_ruleset(
            text,
            ParseOptions {
                min_len: 3,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert!(
            set.is_empty(),
            "a rule missing one of its contents cannot be evaluated faithfully"
        );
    }

    #[test]
    fn min_len_filters_short_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"ab"; sid:8;)"#;
        let set = parse_rules(
            rule,
            ParseOptions {
                min_len: 3,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert!(set.is_empty());
    }
}
