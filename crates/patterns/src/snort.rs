//! Minimal Snort rule parser: extracts exact-match `content:` strings.
//!
//! The paper builds its pattern sets from the `content:` options of Snort
//! rules (Snort v2.9.7 for S1, ET-open 2.9.0 for S2). Those rulesets are not
//! redistributable, so the workspace ships synthetic equivalents
//! ([`crate::synthetic`]) — but this parser lets a user who *does* have a
//! ruleset load it and reproduce the experiments on the real patterns.
//!
//! Supported subset of the rule language (sufficient for content extraction):
//!
//! * rule header: `action proto src sport direction dst dport ( options )` —
//!   only the protocol and the port fields are inspected, to derive the
//!   [`ProtocolGroup`];
//! * `content:"...";` options with Snort escaping: `\"`, `\\`, `\;`, `\:` and
//!   hex blocks — both whitespace-separated (`|41 42 43|`) and contiguous
//!   (`|414243|`) byte pairs, and any mix of the two, as Snort accepts;
//! * `nocase;` — sets the **case-insensitivity flag** of the `content:` it
//!   modifies (the immediately preceding one, per Snort's modifier rules).
//!   The resulting [`Pattern`] reports [`Pattern::is_nocase`]` == true` and
//!   every engine in the workspace matches it ASCII-case-insensitively while
//!   the rest of the set stays byte-exact — see the filter-folded /
//!   verify-exact contract in `DEVELOPMENT.md`. A `nocase` with no preceding
//!   content (or following a negated content) is ignored, as Snort does not
//!   accept such rules anyway;
//! * all other options are skipped;
//! * comment lines (`#`) and blank lines are ignored.
//!
//! Each `content:` string becomes one pattern (the longest content of a rule
//! is what Snort hands to the multi-pattern matcher; we keep *all* contents,
//! which only increases the workload and is configurable via
//! [`ParseOptions::longest_content_only`]).

use crate::pattern::{Pattern, PatternSet, ProtocolGroup};
use std::fmt;

/// Options controlling rule parsing.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// If true, only the longest `content:` of each rule is kept (Snort's
    /// "fast pattern" behaviour). If false, every content string becomes a
    /// pattern.
    pub longest_content_only: bool,
    /// Minimum pattern length to keep (Snort never uses empty contents; 1 is
    /// the paper's setting since its rulesets contain 1-byte patterns).
    pub min_len: usize,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            longest_content_only: true,
            min_len: 1,
        }
    }
}

/// A parse error, with the (1-based) line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the rule file.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole rule file into a [`PatternSet`].
///
/// Lines that are not rules (comments, blanks, preprocessor directives) are
/// skipped. Rules without any `content:` option contribute no patterns.
pub fn parse_rules(text: &str, options: ParseOptions) -> Result<PatternSet, ParseError> {
    let mut patterns = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rule_patterns) = parse_rule_line(trimmed, line_no, options)? {
            patterns.extend(rule_patterns);
        }
    }
    Ok(PatternSet::new(patterns))
}

/// Parses one rule line. Returns `Ok(None)` for lines that look like rules but
/// contain no content option.
fn parse_rule_line(
    line: &str,
    line_no: usize,
    options: ParseOptions,
) -> Result<Option<Vec<Pattern>>, ParseError> {
    let open = match line.find('(') {
        Some(i) => i,
        // Not a rule (e.g. a variable definition); ignore.
        None => return Ok(None),
    };
    let header = &line[..open];
    let close = line.rfind(')').ok_or_else(|| ParseError {
        line: line_no,
        message: "missing closing ')' in rule options".to_string(),
    })?;
    if close < open {
        return Err(ParseError {
            line: line_no,
            message: "')' appears before '('".to_string(),
        });
    }
    let body = &line[open + 1..close];
    let group = classify_header(header);

    // `(bytes, nocase)` per kept content. `nocase;` is a modifier of the
    // content option it follows, so we track the index of the most recent
    // kept content; a negated (skipped) content resets it so its trailing
    // modifiers cannot leak onto the previous pattern.
    let mut contents: Vec<(Vec<u8>, bool)> = Vec::new();
    let mut last_content: Option<usize> = None;
    for option in split_options(body) {
        let option = option.trim();
        if let Some(rest) = option.strip_prefix("content:") {
            let value = rest.trim();
            // content may be negated: content:!"..."; negated contents are not
            // part of the multi-pattern matching workload.
            if value.starts_with('!') {
                last_content = None;
                continue;
            }
            let bytes = parse_content_string(value, line_no)?;
            if bytes.len() >= options.min_len {
                contents.push((bytes, false));
                last_content = Some(contents.len() - 1);
            } else {
                last_content = None;
            }
        } else if option == "nocase" {
            if let Some(idx) = last_content {
                contents[idx].1 = true;
            }
        }
    }
    if contents.is_empty() {
        return Ok(None);
    }
    if options.longest_content_only {
        contents.sort_by_key(|(c, _)| std::cmp::Reverse(c.len()));
        contents.truncate(1);
    }
    Ok(Some(
        contents
            .into_iter()
            .map(|(bytes, nocase)| Pattern::new(bytes, group).with_nocase(nocase))
            .collect(),
    ))
}

/// Derives the protocol group from the rule header (protocol and ports).
fn classify_header(header: &str) -> ProtocolGroup {
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    // header: action proto src sport direction dst dport
    let proto = tokens.get(1).copied().unwrap_or("");
    let ports: Vec<&str> = tokens.iter().skip(2).copied().collect();
    let has_port = |p: &str| ports.iter().any(|t| t.contains(p));
    if has_port("$http_ports") || has_port("80") || lower.contains("http") {
        ProtocolGroup::Http
    } else if proto == "udp" && (has_port("53") || lower.contains("dns")) {
        ProtocolGroup::Dns
    } else if has_port("21") || lower.contains("ftp") {
        ProtocolGroup::Ftp
    } else if has_port("25") || lower.contains("smtp") || lower.contains("mail") {
        ProtocolGroup::Smtp
    } else if ports.contains(&"any") && proto == "ip" {
        ProtocolGroup::Any
    } else {
        ProtocolGroup::Other
    }
}

/// Splits a rule option body on ';', honouring quoted strings and escapes.
fn split_options(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escape = false;
    for c in body.chars() {
        if escape {
            current.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escape = true;
            }
            '"' => {
                current.push(c);
                in_quotes = !in_quotes;
            }
            ';' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

/// Parses a Snort content value: a double-quoted string with `\` escapes and
/// `|41 42|` hex blocks.
fn parse_content_string(value: &str, line_no: usize) -> Result<Vec<u8>, ParseError> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line: line_no,
            message: format!("content value is not quoted: {value:?}"),
        })?;
    let mut bytes = Vec::with_capacity(inner.len());
    let mut chars = inner.chars().peekable();
    let mut in_hex = false;
    let mut hex_buf = String::new();
    while let Some(c) = chars.next() {
        if in_hex {
            if c == '|' {
                // Flush the hex block. Snort accepts both whitespace-
                // separated bytes (`|41 42|`) and contiguous runs of byte
                // pairs (`|4142|`, `|41 4243|`): each whitespace-delimited
                // token must be an even-length run of hex digits and is
                // consumed two digits per byte. Odd-length runs and non-hex
                // characters are still rejected.
                for tok in hex_buf.split_whitespace() {
                    if !tok.bytes().all(|b| b.is_ascii_hexdigit()) {
                        return Err(ParseError {
                            line: line_no,
                            message: format!("invalid hex byte {tok:?} in content"),
                        });
                    }
                    if tok.len() % 2 != 0 {
                        return Err(ParseError {
                            line: line_no,
                            message: format!(
                                "odd-length hex run {tok:?} in content (hex bytes are two digits each)"
                            ),
                        });
                    }
                    for pair in tok.as_bytes().chunks_exact(2) {
                        let hi = (pair[0] as char).to_digit(16).expect("checked hex digit");
                        let lo = (pair[1] as char).to_digit(16).expect("checked hex digit");
                        bytes.push((hi * 16 + lo) as u8);
                    }
                }
                hex_buf.clear();
                in_hex = false;
            } else {
                hex_buf.push(c);
            }
            continue;
        }
        match c {
            '|' => in_hex = true,
            '\\' => {
                let escaped = chars.next().ok_or_else(|| ParseError {
                    line: line_no,
                    message: "dangling escape at end of content".to_string(),
                })?;
                bytes.push(escaped as u8);
            }
            _ => {
                let mut buf = [0u8; 4];
                bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    if in_hex {
        return Err(ParseError {
            line: line_no,
            message: "unterminated hex block in content".to_string(),
        });
    }
    if bytes.is_empty() {
        return Err(ParseError {
            line: line_no,
            message: "empty content string".to_string(),
        });
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULE: &str = r#"alert tcp $EXTERNAL_NET any -> $HOME_NET $HTTP_PORTS (msg:"WEB attack"; flow:to_server,established; content:"GET /etc/passwd"; nocase; sid:1001; rev:2;)"#;

    #[test]
    fn parses_simple_http_rule() {
        let set = parse_rules(RULE, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"GET /etc/passwd");
        assert_eq!(p.group(), ProtocolGroup::Http);
        assert!(p.is_nocase(), "the rule carries a nocase; modifier");
    }

    #[test]
    fn nocase_applies_to_the_preceding_content_only() {
        let rule = r#"alert tcp any any -> any 80 (content:"CaseSensitive"; content:"FoldMe-longer"; nocase; sid:10;)"#;
        let set = parse_rules(
            rule,
            ParseOptions {
                longest_content_only: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        let flags: Vec<(Vec<u8>, bool)> = set
            .iter()
            .map(|(_, p)| (p.bytes().to_vec(), p.is_nocase()))
            .collect();
        assert_eq!(
            flags,
            vec![
                (b"CaseSensitive".to_vec(), false),
                (b"FoldMe-longer".to_vec(), true),
            ]
        );
    }

    #[test]
    fn nocase_survives_longest_content_selection() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; content:"the-much-longer-one"; nocase; sid:11;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"the-much-longer-one");
        assert!(p.is_nocase());
    }

    #[test]
    fn nocase_after_negated_content_is_ignored() {
        let rule = r#"alert tcp any any -> any 80 (content:"keepme"; content:!"skipped"; nocase; sid:12;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), b"keepme");
        assert!(
            !p.is_nocase(),
            "a nocase modifying a negated content must not leak onto the previous pattern"
        );
    }

    #[test]
    fn hex_blocks_and_escapes() {
        let rule = r#"alert tcp any any -> any 445 (content:"|00 01 02|AB\;C|ff|"; sid:1;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        let (_, p) = set.iter().next().unwrap();
        assert_eq!(p.bytes(), &[0x00, 0x01, 0x02, b'A', b'B', b';', b'C', 0xff]);
    }

    #[test]
    fn longest_content_only_vs_all_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"short"; content:"a much longer content string"; sid:2;)"#;
        let longest = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(longest.len(), 1);
        assert_eq!(
            longest.iter().next().unwrap().1.bytes(),
            b"a much longer content string"
        );
        let all = parse_rules(
            rule,
            ParseOptions {
                longest_content_only: false,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn contiguous_hex_runs_are_byte_pairs() {
        // `|4142|` is Snort-legal and means the same as `|41 42|`.
        for rule in [
            r#"alert tcp any any -> any 445 (content:"|41 42 43|"; sid:20;)"#,
            r#"alert tcp any any -> any 445 (content:"|414243|"; sid:21;)"#,
            r#"alert tcp any any -> any 445 (content:"|41 4243|"; sid:22;)"#,
            r#"alert tcp any any -> any 445 (content:"|4142 43|"; sid:23;)"#,
        ] {
            let set = parse_rules(rule, ParseOptions::default()).unwrap();
            assert_eq!(set.iter().next().unwrap().1.bytes(), b"ABC", "{rule}");
        }
    }

    #[test]
    fn odd_length_and_garbage_hex_runs_error() {
        let odd = r#"alert tcp any any -> any 80 (content:"|41424|"; sid:24;)"#;
        let err = parse_rules(odd, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("odd-length"), "{}", err.message);

        let garbage = r#"alert tcp any any -> any 80 (content:"|41zz|"; sid:25;)"#;
        let err = parse_rules(garbage, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("invalid hex byte"), "{}", err.message);
    }

    #[test]
    fn negated_content_is_skipped() {
        let rule = r#"alert tcp any any -> any 80 (content:!"not this"; content:"this"; sid:3;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"this");
    }

    #[test]
    fn comments_blank_lines_and_non_rules_are_ignored() {
        let text = "# a comment\n\nvar HOME_NET 10.0.0.0/8\n".to_string() + RULE;
        let set = parse_rules(&text, ParseOptions::default()).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn rules_without_content_yield_nothing() {
        let rule = r#"alert icmp any any -> any any (msg:"ping"; itype:8; sid:4;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn semicolons_inside_quotes_do_not_split_options() {
        let rule = r#"alert tcp any any -> any 80 (msg:"has; semicolon"; content:"a;b"; sid:5;)"#;
        let set = parse_rules(rule, ParseOptions::default()).unwrap();
        assert_eq!(set.iter().next().unwrap().1.bytes(), b"a;b");
    }

    #[test]
    fn error_on_unterminated_hex_block() {
        let rule = r#"alert tcp any any -> any 80 (content:"|41 42"; sid:6;)"#;
        let err = parse_rules(rule, ParseOptions::default()).unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_on_missing_close_paren() {
        let rule = r#"alert tcp any any -> any 80 (content:"x"; sid:7;"#;
        assert!(parse_rules(rule, ParseOptions::default()).is_err());
    }

    #[test]
    fn protocol_classification() {
        assert_eq!(
            classify_header("alert tcp any any -> any $HTTP_PORTS "),
            ProtocolGroup::Http
        );
        assert_eq!(
            classify_header("alert udp any any -> any 53 "),
            ProtocolGroup::Dns
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 25 "),
            ProtocolGroup::Smtp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 21 "),
            ProtocolGroup::Ftp
        );
        assert_eq!(
            classify_header("alert tcp any any -> any 6667 "),
            ProtocolGroup::Other
        );
    }

    #[test]
    fn min_len_filters_short_contents() {
        let rule = r#"alert tcp any any -> any 80 (content:"ab"; sid:8;)"#;
        let set = parse_rules(
            rule,
            ParseOptions {
                min_len: 3,
                ..ParseOptions::default()
            },
        )
        .unwrap();
        assert!(set.is_empty());
    }
}
