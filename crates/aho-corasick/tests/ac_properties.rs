//! Property tests: Aho-Corasick engines agree with the naive reference
//! matcher on arbitrary pattern sets and inputs.

use mpm_aho_corasick::{DfaMatcher, NfaMatcher};
use mpm_patterns::{naive::naive_find_all, Matcher, Pattern, PatternSet};
use proptest::prelude::*;

/// Strategy: a small alphabet makes overlaps and repeated substrings likely,
/// which is where pattern-matching bugs hide.
fn small_alphabet_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(0u8)],
        1..max_len,
    )
}

fn pattern_set_strategy() -> impl Strategy<Value = PatternSet> {
    proptest::collection::vec(small_alphabet_bytes(8), 1..12)
        .prop_map(|patterns| PatternSet::new(patterns.into_iter().map(Pattern::literal).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nfa_matches_naive(set in pattern_set_strategy(), hay in small_alphabet_bytes(200)) {
        let m = NfaMatcher::build(&set);
        prop_assert_eq!(m.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn dfa_matches_naive(set in pattern_set_strategy(), hay in small_alphabet_bytes(200)) {
        let m = DfaMatcher::build(&set);
        prop_assert_eq!(m.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn dfa_count_equals_match_count(set in pattern_set_strategy(), hay in small_alphabet_bytes(200)) {
        let m = DfaMatcher::build(&set);
        prop_assert_eq!(m.count(&hay), m.find_all(&hay).len() as u64);
    }

    #[test]
    fn random_binary_input_agrees(set in pattern_set_strategy(), hay in proptest::collection::vec(any::<u8>(), 0..300)) {
        let dfa = DfaMatcher::build(&set);
        let nfa = NfaMatcher::build(&set);
        let expected = naive_find_all(&set, &hay);
        prop_assert_eq!(dfa.find_all(&hay), expected.clone());
        prop_assert_eq!(nfa.find_all(&hay), expected);
    }
}
