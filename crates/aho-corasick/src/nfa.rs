//! Aho-Corasick trie construction and the goto/fail (NFA) execution engine.

use mpm_patterns::{MatchEvent, Matcher, PatternId, PatternSet};

/// Sentinel for "no state".
const NO_STATE: u32 = u32::MAX;

/// One state of the automaton.
#[derive(Clone, Debug, Default)]
struct State {
    /// Sorted sparse transitions on input bytes.
    transitions: Vec<(u8, u32)>,
    /// Failure link (root for depth-1 states).
    fail: u32,
    /// Patterns ending at this state, including those inherited along the
    /// failure chain (merged during construction so matching never has to
    /// walk failure links to emit outputs).
    outputs: Vec<PatternId>,
    /// Depth of the state in the trie (length of the prefix it represents).
    depth: u32,
}

impl State {
    #[inline]
    fn transition(&self, byte: u8) -> Option<u32> {
        self.transitions
            .binary_search_by_key(&byte, |&(b, _)| b)
            .ok()
            .map(|i| self.transitions[i].1)
    }
}

/// The constructed Aho-Corasick automaton (trie + failure links + merged
/// output sets). This is the shared artefact both execution engines
/// ([`NfaMatcher`], [`crate::DfaMatcher`]) are built from.
///
/// When the pattern set contains a `nocase` pattern the automaton is built
/// in **folded** mode: every trie transition byte is ASCII-case-folded at
/// construction and [`AcAutomaton::next_state`] folds the input byte to
/// match, so the automaton accepts every case variant of every pattern. The
/// execution engines then apply the verify-exact half of the contract: a
/// case-sensitive pattern's occurrence is confirmed byte-exactly against the
/// input before being reported (the automaton is a perfect filter for those
/// patterns — folding only ever adds acceptances), while `nocase` patterns
/// need no check because folded acceptance *is* their match rule.
/// Case-sensitive-only sets build the exact automaton they always had.
#[derive(Clone, Debug)]
pub struct AcAutomaton {
    states: Vec<State>,
    set: PatternSet,
    folded: bool,
}

impl AcAutomaton {
    /// Builds the automaton for `set`.
    pub fn build(set: &PatternSet) -> Self {
        let folded = set.has_nocase();
        let fold = |b: u8| if folded { b.to_ascii_lowercase() } else { b };
        let mut states = vec![State::default()]; // root = 0

        // Phase 1: trie (goto function), over folded bytes when folded.
        for (id, pattern) in set.iter() {
            let mut current = 0u32;
            for (i, &raw) in pattern.bytes().iter().enumerate() {
                let byte = fold(raw);
                current = match states[current as usize].transition(byte) {
                    Some(next) => next,
                    None => {
                        let next = states.len() as u32;
                        states.push(State {
                            depth: i as u32 + 1,
                            ..State::default()
                        });
                        let trans = &mut states[current as usize].transitions;
                        let pos = trans.partition_point(|&(b, _)| b < byte);
                        trans.insert(pos, (byte, next));
                        next
                    }
                };
            }
            states[current as usize].outputs.push(id);
        }

        // Phase 2: failure links via BFS, merging output sets.
        let mut queue = std::collections::VecDeque::new();
        // Depth-1 states fail to the root.
        let root_transitions = states[0].transitions.clone();
        for &(_, s) in &root_transitions {
            states[s as usize].fail = 0;
            queue.push_back(s);
        }
        while let Some(current) = queue.pop_front() {
            let transitions = states[current as usize].transitions.clone();
            for (byte, next) in transitions {
                queue.push_back(next);
                // Follow failure links of the parent until a state with a
                // transition on `byte` is found (or the root).
                let mut fail = states[current as usize].fail;
                let fail_target = loop {
                    if fail == NO_STATE {
                        break 0;
                    }
                    if let Some(t) = states[fail as usize].transition(byte) {
                        break t;
                    }
                    if fail == 0 {
                        break 0;
                    }
                    fail = states[fail as usize].fail;
                };
                states[next as usize].fail = fail_target;
                // Merge outputs so emitting matches never walks the chain.
                let inherited = states[fail_target as usize].outputs.clone();
                states[next as usize].outputs.extend(inherited);
            }
        }
        // Root "fails" to itself.
        states[0].fail = 0;

        AcAutomaton {
            states,
            set: set.clone(),
            folded,
        }
    }

    /// True if the automaton was built over ASCII-case-folded transition
    /// bytes (the set contains a `nocase` pattern).
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Number of states, including the root.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The pattern set the automaton was built from.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }

    /// Follows goto/fail transitions from `state` on `byte` and returns the
    /// next state (the deterministic delta function). `byte` is a raw input
    /// byte: in folded mode it is case-folded here, so callers — including
    /// the dense-table construction in [`crate::DfaMatcher`], whose table
    /// thereby absorbs the fold — never fold themselves.
    #[inline]
    pub fn next_state(&self, mut state: u32, byte: u8) -> u32 {
        let byte = if self.folded {
            byte.to_ascii_lowercase()
        } else {
            byte
        };
        loop {
            if let Some(next) = self.states[state as usize].transition(byte) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.states[state as usize].fail;
        }
    }

    /// Patterns ending at `state`.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[PatternId] {
        &self.states[state as usize].outputs
    }

    /// Depth (matched prefix length) of `state`.
    #[inline]
    pub fn depth(&self, state: u32) -> u32 {
        self.states[state as usize].depth
    }

    /// Approximate heap footprint of the sparse automaton in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.states
            .iter()
            .map(|s| {
                std::mem::size_of::<State>()
                    + s.transitions.len() * std::mem::size_of::<(u8, u32)>()
                    + s.outputs.len() * std::mem::size_of::<PatternId>()
            })
            .sum()
    }
}

/// Goto/fail execution engine over [`AcAutomaton`].
#[derive(Clone, Debug)]
pub struct NfaMatcher {
    automaton: AcAutomaton,
}

impl NfaMatcher {
    /// Builds the matcher for `set`.
    pub fn build(set: &PatternSet) -> Self {
        NfaMatcher {
            automaton: AcAutomaton::build(set),
        }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &AcAutomaton {
        &self.automaton
    }
}

impl Matcher for NfaMatcher {
    fn name(&self) -> &'static str {
        "Aho-Corasick (NFA)"
    }

    fn max_pattern_len(&self) -> usize {
        let set = &self.automaton.set;
        set.patterns().iter().map(|p| p.len()).max().unwrap_or(0)
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        let set = &self.automaton.set;
        let folded = self.automaton.folded;
        let mut state = 0u32;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.automaton.next_state(state, byte);
            for &id in self.automaton.outputs(state) {
                let pattern = set.get(id);
                let start = i + 1 - pattern.len();
                // Folded automaton = case-insensitive acceptance: confirm
                // case-sensitive patterns through the shared per-pattern
                // verification rule before reporting (`nocase` patterns need
                // no check — folded acceptance *is* their match rule).
                if folded && !pattern.is_nocase() && !pattern.matches_at(haystack, start) {
                    continue;
                }
                out.push(MatchEvent::new(start, id));
            }
        }
    }

    fn count(&self, haystack: &[u8]) -> u64 {
        let set = &self.automaton.set;
        let folded = self.automaton.folded;
        let mut state = 0u32;
        let mut count = 0u64;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.automaton.next_state(state, byte);
            if folded {
                for &id in self.automaton.outputs(state) {
                    let pattern = set.get(id);
                    let start = i + 1 - pattern.len();
                    if pattern.is_nocase() || pattern.matches_at(haystack, start) {
                        count += 1;
                    }
                }
            } else {
                count += self.automaton.outputs(state).len() as u64;
            }
        }
        count
    }

    fn heap_bytes(&self) -> usize {
        self.automaton.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::naive::naive_find_all;

    fn classic_set() -> PatternSet {
        PatternSet::from_literals(&["he", "she", "his", "hers"])
    }

    #[test]
    fn classic_example_matches() {
        let set = classic_set();
        let m = NfaMatcher::build(&set);
        let found = m.find_all(b"ushers");
        assert_eq!(found, naive_find_all(&set, b"ushers"));
        // "she" at 1, "he" at 2, "hers" at 2.
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn state_count_matches_trie_size() {
        let set = classic_set();
        let a = AcAutomaton::build(&set);
        // Prefixes: h, he, her, hers, hi, his, s, sh, she + root = 10.
        assert_eq!(a.state_count(), 10);
    }

    #[test]
    fn folded_nfa_matches_nocase_semantics() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"He"),
            Pattern::literal(*b"she"),
            Pattern::literal_nocase(*b"HERS"),
        ]);
        let m = NfaMatcher::build(&set);
        assert!(m.automaton().is_folded());
        let hay = b"uSHERS ushers SHE she HE he";
        let expected = naive_find_all(&set, hay);
        assert_eq!(m.find_all(hay), expected);
        assert_eq!(m.count(hay), expected.len() as u64);
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let set = PatternSet::from_literals(&["a", "aa", "aaa", "aaaa"]);
        let m = NfaMatcher::build(&set);
        let hay = b"aaaaa";
        assert_eq!(m.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn duplicate_patterns_report_both_ids() {
        let set = PatternSet::from_literals(&["dup", "dup"]);
        let m = NfaMatcher::build(&set);
        let found = m.find_all(b"xxdupxx");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].start, 2);
        assert_eq!(found[1].start, 2);
    }

    #[test]
    fn binary_and_boundary_matches() {
        let set = PatternSet::from_literals(&[&[0x00u8, 0x01][..], &[0xff, 0xff, 0xff][..]]);
        let hay = [0x00, 0x01, 0xff, 0xff, 0xff, 0x00, 0x01];
        let m = NfaMatcher::build(&set);
        assert_eq!(m.find_all(&hay), naive_find_all(&set, &hay));
    }

    #[test]
    fn count_equals_find_all_len() {
        let set = classic_set();
        let m = NfaMatcher::build(&set);
        let hay = b"she sells seashells; he hears hers";
        assert_eq!(m.count(hay), m.find_all(hay).len() as u64);
    }

    #[test]
    fn empty_haystack_and_no_match_input() {
        let set = classic_set();
        let m = NfaMatcher::build(&set);
        assert!(m.find_all(b"").is_empty());
        assert!(m.find_all(b"xyz qqq 123").is_empty());
    }

    #[test]
    fn heap_bytes_grows_with_patterns() {
        let small = NfaMatcher::build(&PatternSet::from_literals(&["ab"]));
        let lits: Vec<String> = (0..500).map(|i| format!("pattern-number-{i}")).collect();
        let big = NfaMatcher::build(&PatternSet::from_literals(&lits));
        assert!(big.heap_bytes() > small.heap_bytes() * 10);
    }
}
