//! From-scratch Aho-Corasick implementation: the baseline the paper (and
//! Snort) uses for exact multiple pattern matching.
//!
//! Two execution engines are provided over the same construction:
//!
//! * [`NfaMatcher`] — the classic goto/fail automaton. Sparse transitions,
//!   small memory footprint, but each input byte may walk several failure
//!   links.
//! * [`DfaMatcher`] — the fully-dense state-transition-table variant that
//!   Snort's `acsmx2` "full" matcher uses and which the paper benchmarks:
//!   one 256-entry row per state, exactly one table lookup per input byte.
//!   This is the configuration whose memory footprint explodes with the
//!   number of patterns and whose poor cache locality motivates DFC and
//!   V-PATCH (paper §II-A).
//!
//! Both engines produce the complete set of `(pattern, position)`
//! occurrences, including overlapping matches — the correctness reference
//! the other engines are compared against in the paper's evaluation and in
//! this workspace's test suites.

#![warn(missing_docs)]

pub mod dfa;
pub mod nfa;

pub use dfa::DfaMatcher;
pub use nfa::{AcAutomaton, NfaMatcher};

use mpm_patterns::PatternSet;

/// Builds the matcher variant the paper benchmarks (full DFA) from a pattern
/// set. Convenience constructor used by examples and benches.
pub fn build_snort_style(set: &PatternSet) -> DfaMatcher {
    DfaMatcher::build(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpm_patterns::{naive::naive_find_all, Matcher, PatternSet};

    #[test]
    fn snort_style_builder_matches_naive() {
        let set = PatternSet::from_literals(&["he", "she", "his", "hers"]);
        let m = build_snort_style(&set);
        assert_eq!(m.find_all(b"ushers"), naive_find_all(&set, b"ushers"));
    }
}
