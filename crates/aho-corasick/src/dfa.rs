//! Full state-transition-table (DFA) execution engine — the Snort `acsmx2`
//! "full" variant the paper uses as its Aho-Corasick baseline.
//!
//! Construction converts the goto/fail automaton into a dense table with one
//! 256-entry row per state, so matching performs exactly one table lookup per
//! input byte and never walks failure links. The price is memory: with
//! thousands of patterns the table spans tens of megabytes — far larger than
//! L2/L3 — which is precisely the cache-locality problem the paper's
//! filtering approaches attack. [`DfaMatcher::heap_bytes`] and
//! [`DfaMatcher::table_rows`] expose that footprint for the memory-growth
//! analysis and the cache-simulation experiments.

use crate::nfa::AcAutomaton;
use mpm_patterns::{MatchEvent, Matcher, PatternId, PatternSet};

/// Dense Aho-Corasick matcher (one 256-wide row per state).
#[derive(Clone, Debug)]
pub struct DfaMatcher {
    /// Row-major transition table: `table[state * 256 + byte] = next state`.
    table: Vec<u32>,
    /// Output lists per state (merged along failure links at construction).
    outputs: Vec<Vec<PatternId>>,
    /// Pattern lengths (indexed by pattern id) so match starts can be
    /// computed without touching the pattern set.
    pattern_lens: Vec<u32>,
    /// Per-pattern `nocase` flags (indexed by pattern id), consulted on the
    /// cold emit path when the table is folded.
    pattern_nocase: Vec<bool>,
    /// True if the dense table was converted from a folded automaton: the
    /// table itself absorbs the input case-fold (its rows were filled
    /// through `AcAutomaton::next_state`, which folds), so the per-byte scan
    /// loop is unchanged and only the emit path verifies case-sensitive
    /// patterns byte-exactly.
    folded: bool,
    set: PatternSet,
}

impl DfaMatcher {
    /// Builds the dense matcher for `set`.
    pub fn build(set: &PatternSet) -> Self {
        let automaton = AcAutomaton::build(set);
        Self::from_automaton(&automaton)
    }

    /// Converts an existing automaton into the dense representation.
    pub fn from_automaton(automaton: &AcAutomaton) -> Self {
        let n = automaton.state_count();
        let mut table = vec![0u32; n * 256];
        let mut outputs = Vec::with_capacity(n);
        for state in 0..n as u32 {
            for byte in 0..=255u8 {
                table[state as usize * 256 + byte as usize] = automaton.next_state(state, byte);
            }
            outputs.push(automaton.outputs(state).to_vec());
        }
        let set = automaton.pattern_set().clone();
        let pattern_lens = set.patterns().iter().map(|p| p.len() as u32).collect();
        let pattern_nocase = set.patterns().iter().map(|p| p.is_nocase()).collect();
        DfaMatcher {
            table,
            outputs,
            pattern_lens,
            pattern_nocase,
            folded: automaton.is_folded(),
            set,
        }
    }

    /// True if the dense table absorbs an ASCII case-fold (built from a
    /// folded automaton because the set contains a `nocase` pattern).
    pub fn is_folded(&self) -> bool {
        self.folded
    }

    /// Number of rows (states) in the dense table.
    pub fn table_rows(&self) -> usize {
        self.outputs.len()
    }

    /// The pattern set this matcher searches for.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }

    /// Walks the DFA over `haystack`, invoking `on_state` with
    /// `(position, state)` after every byte. This hook is used by the cache
    /// simulator to replay the exact memory-access sequence of a scan.
    pub fn walk<F: FnMut(usize, u32)>(&self, haystack: &[u8], mut on_state: F) {
        let mut state = 0u32;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.table[state as usize * 256 + byte as usize];
            on_state(i, state);
        }
    }

    /// Byte offset, within the dense table, of the row for `state` —
    /// used by the cache simulator to map accesses to addresses.
    pub fn row_offset_bytes(&self, state: u32) -> usize {
        state as usize * 256 * std::mem::size_of::<u32>()
    }
}

impl Matcher for DfaMatcher {
    fn name(&self) -> &'static str {
        "Aho-Corasick"
    }

    fn max_pattern_len(&self) -> usize {
        self.pattern_lens
            .iter()
            .map(|&l| l as usize)
            .max()
            .unwrap_or(0)
    }

    fn find_into(&self, haystack: &[u8], out: &mut Vec<MatchEvent>) {
        let mut state = 0u32;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.table[state as usize * 256 + byte as usize];
            let outs = &self.outputs[state as usize];
            if !outs.is_empty() {
                for &id in outs {
                    let len = self.pattern_lens[id.index()] as usize;
                    let start = i + 1 - len;
                    // Folded table = case-insensitive acceptance: confirm
                    // case-sensitive patterns through the shared per-pattern
                    // verification rule before reporting.
                    if self.folded
                        && !self.pattern_nocase[id.index()]
                        && !self.set.get(id).matches_at(haystack, start)
                    {
                        continue;
                    }
                    out.push(MatchEvent::new(start, id));
                }
            }
        }
    }

    fn count(&self, haystack: &[u8]) -> u64 {
        let mut state = 0u32;
        let mut count = 0u64;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.table[state as usize * 256 + byte as usize];
            let outs = &self.outputs[state as usize];
            if outs.is_empty() {
                continue;
            }
            if self.folded {
                for &id in outs {
                    let len = self.pattern_lens[id.index()] as usize;
                    let start = i + 1 - len;
                    if self.pattern_nocase[id.index()]
                        || self.set.get(id).matches_at(haystack, start)
                    {
                        count += 1;
                    }
                }
            } else {
                count += outs.len() as u64;
            }
        }
        count
    }

    fn heap_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
            + self
                .outputs
                .iter()
                .map(|o| {
                    o.len() * std::mem::size_of::<PatternId>()
                        + std::mem::size_of::<Vec<PatternId>>()
                })
                .sum::<usize>()
            + self.pattern_lens.len() * 4
            + self.pattern_nocase.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::NfaMatcher;
    use mpm_patterns::naive::naive_find_all;
    use mpm_patterns::synthetic::{RulesetSpec, SyntheticRuleset};

    #[test]
    fn dfa_agrees_with_nfa_and_naive() {
        let set = PatternSet::from_literals(&["he", "she", "his", "hers", "r", "use"]);
        let dfa = DfaMatcher::build(&set);
        let nfa = NfaMatcher::build(&set);
        let hay = b"ushers use hearses; she sells seashells";
        let expected = naive_find_all(&set, hay);
        assert_eq!(dfa.find_all(hay), expected);
        assert_eq!(nfa.find_all(hay), expected);
    }

    #[test]
    fn dense_table_has_256_entries_per_state() {
        let set = PatternSet::from_literals(&["ab", "bc"]);
        let dfa = DfaMatcher::build(&set);
        assert_eq!(dfa.table.len(), dfa.table_rows() * 256);
        // Root + a, ab, b, bc = 5 states.
        assert_eq!(dfa.table_rows(), 5);
    }

    #[test]
    fn memory_footprint_grows_much_faster_than_filter_structures() {
        // Reproduces the qualitative claim of paper §II-A: the automaton
        // does not fit in cache once the ruleset is realistic.
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(2_000, 99));
        let dfa = DfaMatcher::build(rs.full());
        assert!(
            dfa.heap_bytes() > 4 * 1024 * 1024,
            "2k patterns should already exceed typical L2 (got {} bytes)",
            dfa.heap_bytes()
        );
    }

    #[test]
    fn folded_dfa_matches_nocase_semantics_exactly() {
        use mpm_patterns::Pattern;
        let set = PatternSet::new(vec![
            Pattern::literal_nocase(*b"ShE"),
            Pattern::literal(*b"he"),
            Pattern::literal_nocase(*b"HERS"),
            Pattern::literal(*b"His"),
        ]);
        let dfa = DfaMatcher::build(&set);
        let nfa = NfaMatcher::build(&set);
        assert!(dfa.is_folded());
        let hay = b"uSHErs ushers His HIS hE he sHe HeRs";
        let expected = naive_find_all(&set, hay);
        assert_eq!(dfa.find_all(hay), expected);
        assert_eq!(nfa.find_all(hay), expected);
        assert_eq!(dfa.count(hay), expected.len() as u64);
        assert_eq!(nfa.count(hay), expected.len() as u64);
    }

    #[test]
    fn case_variant_duplicates_are_distinguished_by_verification() {
        use mpm_patterns::Pattern;
        // "AB" exact and "ab" nocase share one folded trie path; only the
        // per-pattern check separates them.
        let set = PatternSet::new(vec![
            Pattern::literal(*b"AB"),
            Pattern::literal_nocase(*b"ab"),
        ]);
        let dfa = DfaMatcher::build(&set);
        let hay = b"AB ab Ab";
        let expected = naive_find_all(&set, hay);
        assert_eq!(dfa.find_all(hay), expected);
        // nocase hits all three, exact only the first.
        assert_eq!(expected.len(), 4);
    }

    #[test]
    fn case_sensitive_only_sets_build_unfolded_dfa() {
        let set = PatternSet::from_literals(&["He", "SHE"]);
        let dfa = DfaMatcher::build(&set);
        assert!(!dfa.is_folded());
        let hay = b"He he SHE she";
        assert_eq!(dfa.find_all(hay), naive_find_all(&set, hay));
    }

    #[test]
    fn walk_visits_every_position() {
        let set = PatternSet::from_literals(&["abc"]);
        let dfa = DfaMatcher::build(&set);
        let mut positions = Vec::new();
        dfa.walk(b"xxabcxx", |i, _s| positions.push(i));
        assert_eq!(positions, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn count_matches_on_synthetic_ruleset_and_traffic() {
        let rs = SyntheticRuleset::generate(RulesetSpec::tiny(300, 5));
        let set = rs.http();
        let dfa = DfaMatcher::build(&set);
        // Build an input by concatenating a few patterns with filler.
        let mut hay = Vec::new();
        for (i, (_, p)) in set.iter().enumerate().take(20) {
            hay.extend_from_slice(p.bytes());
            hay.extend_from_slice(format!("--filler{i}--").as_bytes());
        }
        let expected = naive_find_all(&set, &hay);
        assert_eq!(dfa.find_all(&hay), expected);
        assert_eq!(dfa.count(&hay), expected.len() as u64);
    }

    #[test]
    fn single_byte_pattern_at_every_position() {
        let set = PatternSet::from_literals(&["z"]);
        let dfa = DfaMatcher::build(&set);
        let found = dfa.find_all(b"zzz");
        assert_eq!(found.len(), 3);
        assert_eq!(found[2].start, 2);
    }
}
