//! Minimal offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the shim `serde` crate's [`serde::Value`] tree as JSON text, with
//! the same layout conventions as the real crate's pretty printer (two-space
//! indent, `"key": value` separators).
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialisation error. The shim's value tree can always be rendered, so this
/// is never actually constructed; it exists so call sites keep the real
/// crate's `Result` signature.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_sequence(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => write_sequence(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                out.push(' ');
                write_value(out, item, indent, depth);
            },
        ),
    }
}

fn write_sequence<I, F>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<&str>, usize),
{
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` on f64 produces the shortest round-trip representation and
        // always includes a decimal point or exponent, matching serde_json
        // ("1.8", "42.0").
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_layout_matches_serde_json_conventions() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("x".to_string())),
            ("speed".to_string(), Value::Float(1.8)),
            (
                "counts".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        let text = to_string_pretty(&WrapperForTest(value)).unwrap();
        assert!(text.contains("\"speed\": 1.8"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.starts_with("{\n  \"name\": \"x\","));
        assert!(text.ends_with("\n}"));
    }

    #[test]
    fn compact_and_escapes() {
        let value = Value::Array(vec![
            Value::String("a\"b\\c\nd".to_string()),
            Value::Bool(true),
            Value::Null,
            Value::Int(-3),
        ]);
        let text = to_string(&WrapperForTest(value)).unwrap();
        assert_eq!(text, "[\"a\\\"b\\\\c\\nd\",true,null,-3]");
    }

    /// Test helper: a `Serialize` that returns a pre-built tree.
    struct WrapperForTest(Value);

    impl Serialize for WrapperForTest {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
