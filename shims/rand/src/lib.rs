//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), [`RngCore`] and the
//! [`prelude`]'s [`SliceRandom::choose`]. The generator is a SplitMix64 —
//! statistically fine for synthetic workload generation, deterministic per
//! seed and identical across platforms, which is all the workspace needs
//! (nothing here is cryptographic).
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

/// Streams of random data: the object-safe core every generator implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)` when `inclusive` is false, `[low,
    /// high]` otherwise. `low` must not exceed `high` (and must be strictly
    /// below it in the exclusive case).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                if span == 0 {
                    // Either the full domain of a 64-bit type (inclusive), or
                    // an empty exclusive range, which the assertions in
                    // `SampleRange` rule out.
                    return rng.next_u64() as $t;
                }
                ((low as $wide as u64).wrapping_add(rng.next_u64() % span)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

/// Ranges that [`Rng::gen_range`] can sample from. The blanket impls over
/// [`SampleUniform`] tie the range's element type to the sampled type, which
/// is what lets integer-literal ranges infer their type from the surrounding
/// context exactly like the real crate.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// Convenience extension methods, automatically available on every
/// [`RngCore`] implementor (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type uniformly (integers over their
    /// whole domain, `f64`/`f32` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not cryptographically
    /// secure, but it is deterministic per seed and stable across platforms,
    /// which is what the synthetic ruleset/trace generators rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Extension methods on slices (mirrors `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Returns one uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_and_choose() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
