//! Test-execution support types: configuration, the per-test PRNG, and the
//! error type property bodies return.

use std::fmt;

/// Per-test configuration (only the case count is honoured by the shim).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the shim defaults lower because the
        // engine-equivalence properties run several engine builds per case.
        ProptestConfig { cases: 64 }
    }
}

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test PRNG (SplitMix64 seeded from the test name), so a
/// failing case reproduces on every run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn config_defaults_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
