//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of a type.
///
/// Unlike the real proptest (whose strategies produce shrinkable value
/// trees), the shim's strategies simply sample a value from a PRNG.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

// Tuples of strategies are themselves strategies producing tuples of values,
// matching the real proptest (each component samples independently).
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Weighted choice among boxed strategies of a common value type
/// (what [`crate::prop_oneof!`] builds).
pub struct OneOf<T> {
    choices: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Creates the choice strategy. Use [`weighted`] to build the entries.
    ///
    /// # Panics
    /// Panics if `choices` is empty or all weights are zero.
    pub fn new(choices: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        OneOf {
            choices,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, strategy) in &self.choices {
            if roll < *weight as u64 {
                return strategy.sample(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll below total weight always lands in a choice")
    }
}

/// Boxes a strategy with a weight, unifying heterogeneous strategy types for
/// [`OneOf`] (called by the [`crate::prop_oneof!`] expansion).
pub fn weighted<S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_map_and_oneof() {
        let mut rng = TestRng::from_name("strategy-tests");
        for _ in 0..500 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
        }
        let doubled = (1usize..4).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v == 2 || v == 4 || v == 6);
        }
        let choice = OneOf::new(vec![weighted(1, Just(7u8)), weighted(3, Just(9u8))]);
        let mut sevens = 0;
        for _ in 0..1000 {
            match choice.sample(&mut rng) {
                7 => sevens += 1,
                9 => {}
                other => panic!("unexpected {other}"),
            }
        }
        // Weight 1-vs-3 should land far from 50/50.
        assert!((150..400).contains(&sevens), "got {sevens}");
    }
}
