//! The [`any`] strategy: uniform sampling over a type's whole domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `A` (`any::<u8>()` etc.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::from_name("arbitrary-tests");
        let strategy = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[strategy.sample(&mut rng) as usize] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 250, "only {covered} byte values seen");
    }
}
