//! Minimal offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map`, integer-range and [`any`] strategies,
//! [`collection::vec`], [`array::uniform8`]/[`array::uniform16`],
//! [`prop_oneof!`] (weighted and unweighted), [`strategy::Just`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test-only shim:
//!
//! * **no shrinking** — a failing case reports its inputs (via the panic
//!   message where the assertion formats them) but is not minimised;
//! * **rejection via `prop_assume!` skips the case** instead of resampling;
//! * cases are generated from a deterministic per-test PRNG (seeded from the
//!   test name), so failures reproduce across runs.
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};

/// The most commonly used items, for glob import in test files.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` block
/// becomes a `#[test]` that samples the strategies for a configurable number
/// of cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr);
     $( $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(::core::stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            ::core::stringify!($name),
                            error
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case unless the precondition holds (the real crate
/// resamples; the shim simply treats the case as passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Chooses among several strategies with equal or explicit weights; all
/// branches must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::weighted($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}
