//! Collection strategies ([`vec()`]).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::from_name("collection-tests");
        let strategy = vec(any::<u8>(), 3..9);
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }
}
