//! Fixed-size array strategies ([`uniform8`], [`uniform16`]).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]` by sampling the element strategy once
/// per lane.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// Arrays of 8 values drawn from `element`.
pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
    UniformArray { element }
}

/// Arrays of 16 values drawn from `element`.
pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
    UniformArray { element }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn arrays_have_independent_lanes() {
        let mut rng = TestRng::from_name("array-tests");
        let a: [u32; 16] = uniform16(any::<u32>()).sample(&mut rng);
        let b: [u32; 8] = uniform8(any::<u32>()).sample(&mut rng);
        assert_ne!(&a[..8], &b[..], "consecutive samples should differ");
    }
}
