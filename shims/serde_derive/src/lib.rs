//! Offline stand-in for `serde_derive`.
//!
//! Emits implementations of the shim `serde::Serialize` /
//! `serde::Deserialize` traits (see `shims/serde`). Because `syn`/`quote`
//! are unavailable offline, the input item is parsed directly from the
//! `proc_macro` token stream. The supported shapes are exactly what this
//! workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtype or multi-field),
//! * field-less enums,
//!
//! all without generic parameters. Anything else produces a compile error
//! naming this shim, so a future use of an unsupported shape fails loudly
//! instead of serialising wrongly.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` trait (a `to_value` conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(message) => compile_error(&message),
    }
}

/// Derives the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .expect("generated impl parses"),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("error literal parses")
}

/// What the derive input turned out to be.
enum ItemKind {
    /// Struct with named fields (field identifiers in declaration order).
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Field-less enum (variant identifiers).
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match &token {
            // Outer attributes (including doc comments): `#` `[...]`.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) if ident.to_string() == "pub" => {
                // `pub(crate)` etc: skip the restriction group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(ident) if ident.to_string() == "struct" => {
                let name = expect_ident(tokens.next())?;
                return match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                        name,
                        kind: ItemKind::NamedStruct(parse_named_fields(g.stream())?),
                    }),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Ok(Item {
                            name,
                            kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
                        })
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
                        "serde_derive shim: generic type `{name}` is not supported"
                    )),
                    other => Err(format!(
                        "serde_derive shim: unsupported struct shape for `{name}` ({other:?})"
                    )),
                };
            }
            TokenTree::Ident(ident) if ident.to_string() == "enum" => {
                let name = expect_ident(tokens.next())?;
                return match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                        kind: ItemKind::Enum(parse_fieldless_variants(&name, g.stream())?),
                        name,
                    }),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
                        "serde_derive shim: generic type `{name}` is not supported"
                    )),
                    other => Err(format!(
                        "serde_derive shim: unsupported enum shape for `{name}` ({other:?})"
                    )),
                };
            }
            // `union`, visibility modifiers we don't know, etc.
            _ => {}
        }
    }
    Err("serde_derive shim: found no struct or enum in derive input".to_string())
}

fn expect_ident(token: Option<TokenTree>) -> Result<String, String> {
    match token {
        Some(TokenTree::Ident(ident)) => Ok(ident.to_string()),
        other => Err(format!(
            "serde_derive shim: expected an identifier, found {other:?}"
        )),
    }
}

/// Extracts the field names of a named-field struct body. Commas inside
/// angle brackets (`BTreeMap<String, usize>`) do not terminate a field.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected a field name, found {other:?}"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct body (top-level comma-separated types).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for token in body {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Extracts the variant names of a field-less enum body.
fn parse_fieldless_variants(name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => variants.push(ident.to_string()),
            other => {
                return Err(format!(
                    "serde_derive shim: expected a variant of `{name}`, found {other:?}"
                ))
            }
        }
        // Reject data-carrying variants, skip discriminants, consume the comma.
        if let Some(TokenTree::Group(_)) = tokens.peek() {
            return Err(format!(
                "serde_derive shim: enum `{name}` has data-carrying variants, \
                 which this shim does not support"
            ));
        }
        for token in tokens.by_ref() {
            if let TokenTree::Punct(p) = &token {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    Ok(variants)
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut entries = String::new();
            for field in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from({field:?}), \
                     ::serde::Serialize::to_value(&self.{field})),"
                ));
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(0) => "::serde::Value::Array(::std::vec![])".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let mut entries = String::new();
            for i in 0..*n {
                entries.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                arms.push_str(&format!("{name}::{variant} => {variant:?},"));
            }
            format!("::serde::Value::String(::std::string::String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}
