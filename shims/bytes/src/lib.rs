//! Minimal offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the subset of [`Bytes`] this workspace uses: cheap
//! reference-counted clones and zero-copy slicing.
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable byte buffer.
///
/// Clones share the underlying allocation through an [`Arc`]; [`Bytes::slice`]
/// produces a view into the same allocation without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of this buffer. Zero-copy: the returned `Bytes`
    /// shares the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds for length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes of this view as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from(data.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_is_zero_copy_and_correct() {
        let b = Bytes::from((0u8..64).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(&s[..], &(10u8..20).collect::<Vec<u8>>()[..]);
        let nested = s.slice(2..5);
        assert_eq!(&nested[..], &[12, 13, 14]);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::from(vec![1, 2, 3]), Bytes::from(vec![1, 2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
