//! Minimal offline stand-in for [`serde`](https://serde.rs).
//!
//! The real serde models serialisation as a visitor protocol between a data
//! structure and a format backend. This workspace only ever serialises result
//! structures to JSON for reporting, so the shim collapses the protocol to a
//! concrete [`Value`] tree: [`Serialize`] converts a value into a `Value`,
//! and the `serde_json` shim renders that tree. [`Deserialize`] is a marker
//! only — nothing in the workspace deserialises.
//!
//! The derive macros are re-exported from the `serde_derive` shim, so
//! `#[derive(Serialize, Deserialize)]` and `use serde::{Serialize,
//! Deserialize}` work exactly as with the real crate (for the supported type
//! shapes — see the `serde_derive` shim's documentation).
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A serialised value tree (the shim's wire-format-independent middle layer,
/// playing the role JSON values play in `serde_json`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values (insertion order preserved,
    /// matching how derived structs list their fields).
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree (the shim's analogue of
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into a serialised value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait standing in for `serde::Deserialize` (derivable, never
/// actually used to deserialise anything in this workspace).
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_and_container_conversions() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-4i64).to_value(), Value::Int(-4));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 9usize);
        assert_eq!(
            map.to_value(),
            Value::Object(vec![("k".to_string(), Value::UInt(9))])
        );
    }
}
