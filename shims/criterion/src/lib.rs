//! Minimal offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's `benches/` targets use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`] — with
//! a simple mean/min wall-clock measurement instead of the real crate's
//! statistical analysis.
//!
//! Behaviour notes:
//!
//! * Under `cargo bench`, cargo passes `--bench` to the (harness = false)
//!   binary; the shim then runs every registered benchmark and prints one
//!   line per function (mean time per iteration, plus throughput when the
//!   group set one).
//! * Under `cargo test`, no `--bench` flag is passed; the shim prints a note
//!   and exits immediately, so benchmark workloads never slow down the test
//!   suite.
//!
//! The workspace builds without network access, so the real crates.io
//! dependency is replaced by this shim (see the repository's DEVELOPMENT.md).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// True when the binary was invoked by `cargo bench` (cargo passes
    /// `--bench` to harness-less bench targets).
    pub fn bench_mode() -> bool {
        std::env::args().any(|arg| arg == "--bench")
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// How much work one benchmark iteration performs, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if per_iter > Duration::ZERO => {
                let gib = bytes as f64 / (1u64 << 30) as f64;
                format!(" ({:.3} GiB/s)", gib / per_iter.as_secs_f64())
            }
            Some(Throughput::Elements(elements)) if per_iter > Duration::ZERO => {
                format!(
                    " ({:.3} Melem/s)",
                    elements as f64 / 1e6 / per_iter.as_secs_f64()
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {per_iter:?}/iter over {} iters{rate}",
            self.name, bencher.iters
        );
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over the configured number of iterations (plus one
    /// untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed += start.elapsed();
    }
}

/// Identifier combining a function name and a parameter, printed as
/// `name/parameter` like the real crate.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Groups benchmark functions under one runner function, mirroring the real
/// crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a bench target: runs the groups under `cargo bench`,
/// exits immediately under `cargo test`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::Criterion::bench_mode() {
                println!(
                    "criterion shim: not invoked by `cargo bench`; skipping benchmarks"
                );
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("count", "x"), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 measured iterations.
        assert_eq!(calls, 4);
    }
}
